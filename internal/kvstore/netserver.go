package kvstore

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/lifecycle"
	"repro/internal/metrics"
	"repro/internal/submit"
	"repro/internal/workload"
)

// AttackMarker makes a SET over the wire malicious: values with this
// prefix stand in for crafted exploit payloads against the parser.
const AttackMarker = "!!exploit"

// overloadRetryCyclesPerSlot is the virtual-cycle cost estimate behind
// the batched path's overload retry hint: one queue slot ≈ one request's
// service time (the servers' 100µs inter-arrival at the default clock).
// The hint is depth × this, quantized — pure configuration, so the
// rejection bytes are identical across runs and hosts.
const overloadRetryCyclesPerSlot = 300_000

// NetServer serves the memcached text protocol over TCP on top of a
// Server or a Pool, with connections multiplexing on real sockets.
type NetServer struct {
	handle func(ctx context.Context, clientID int, req workload.Request) Response
	stats  func(w io.Writer) error
	// scanFn serves one paginated scan page (nil disables the scan
	// command). Scans bypass the submission queues even on batched
	// servers: a page is a trusted-side metadata walk, not domain work.
	scanFn func(prefix, cursor string, limit int) (ScanResult, error)
	log    *log.Logger

	// reqTimeout, when non-zero, caps each request with a context
	// deadline (mapped to a virtual-cycle budget by the server).
	reqTimeout time.Duration

	// queues is the async submission layer (batched servers only).
	queues *submit.Queues

	// gw, when set, fronts every data command with tenant admission
	// (auth command, rate limits, quotas, quarantine, drain).
	gw *gateway.Gateway

	// workers, healthFn, drainFn, closeFn, resizeFn, workersFn abstract
	// over the Server/Pool split for the lifecycle surface.
	workers   int
	healthFn  func() []gateway.ShardHealth
	drainFn   func() error
	closeFn   func() error
	resizeFn  func(int) error
	workersFn func() int

	// lc is the shared lifecycle state machine: it memoizes Drain and
	// Close and rejects illegal transitions with a typed
	// *LifecycleError. The eager constructors return it pre-advanced to
	// Healthy; the deferred constructor leaves it Initializing.
	lc *lifecycle.Machine

	// elastic, when enabled, autoscales the parser worker domains from
	// submission-queue backlog (batched pool servers only).
	elasticMu sync.Mutex
	elastic   *netElastic

	connMu sync.Mutex
	nextID int

	wg sync.WaitGroup
}

// NewNetServer wraps srv for TCP serving. logger may be nil to disable
// logging. The single Server owns one simulated core, so request
// handling is serialized behind a mutex.
func NewNetServer(srv *Server, logger *log.Logger) *NetServer {
	var mu sync.Mutex
	return servingNet(&NetServer{
		log: logger,
		handle: func(ctx context.Context, clientID int, req workload.Request) Response {
			mu.Lock()
			defer mu.Unlock()
			return srv.HandleContext(ctx, clientID, req)
		},
		stats: func(w io.Writer) error {
			mu.Lock()
			defer mu.Unlock()
			return WriteStats(w, srv)
		},
		scanFn: func(prefix, cursor string, limit int) (ScanResult, error) {
			mu.Lock()
			defer mu.Unlock()
			return srv.Scan(prefix, cursor, limit)
		},
		workers: 1,
		healthFn: func() []gateway.ShardHealth {
			mu.Lock()
			defer mu.Unlock()
			return serverHealth(srv)
		},
		drainFn: func() error {
			mu.Lock()
			defer mu.Unlock()
			return srv.Drain()
		},
		closeFn: func() error {
			mu.Lock()
			defer mu.Unlock()
			return srv.Close()
		},
		resizeFn: func(k int) error {
			mu.Lock()
			defer mu.Unlock()
			return srv.ResizeWorkers(k)
		},
		workersFn: func() int {
			mu.Lock()
			defer mu.Unlock()
			return srv.Workers()
		},
	})
}

// servingNet advances a freshly built NetServer's lifecycle machine to
// Healthy — the eager-constructor pattern (resources were allocated
// inline, the server serves immediately).
func servingNet(n *NetServer) *NetServer {
	n.lc = lifecycle.NewMachine("kvstore.NetServer")
	_ = n.lc.Init(nil)  //lint:errclass fresh machine; Init from StateInitializing cannot fail
	_ = n.lc.Start(nil) //lint:errclass inited machine; Start cannot fail
	return n
}

// serverHealth is the single-server shard-health row.
func serverHealth(srv *Server) []gateway.ShardHealth {
	h := gateway.ShardHealth{Shard: 0, State: gateway.ShardOK}
	switch {
	case srv.PersistErr() != nil:
		h.State = gateway.ShardFailStop
		h.Detail = srv.PersistErr().Error()
	case srv.Drained():
		h.State = gateway.ShardDrained
	case srv.SnapshotErr() != nil:
		h.State = gateway.ShardDegraded
		h.Detail = srv.SnapshotErr().Error()
	}
	return []gateway.ShardHealth{h}
}

// NewNetServerPool wraps a Pool for TCP serving; logger may be nil. The
// pool synchronizes internally per shard, so requests for keys on
// different shards execute in parallel.
func NewNetServerPool(p *Pool, logger *log.Logger) *NetServer {
	return servingNet(NewDeferredNetServerPool(p, logger))
}

// NewDeferredNetServerPool is NewNetServerPool without the lifecycle
// advancement: the returned server is Initializing, and Init + Start
// must run before it may Drain, Stop, or resize (Serve itself does not
// consult the machine — legacy constructors advance it for you).
func NewDeferredNetServerPool(p *Pool, logger *log.Logger) *NetServer {
	return &NetServer{
		log:       logger,
		handle:    p.HandleContext,
		stats:     func(w io.Writer) error { return WriteStats(w, p) },
		scanFn:    p.Scan,
		workers:   p.Workers(),
		healthFn:  p.Health,
		drainFn:   p.Drain,
		closeFn:   p.Close,
		resizeFn:  p.ResizeWorkers,
		workersFn: p.ShardWorkers,
		lc:        lifecycle.NewMachine("kvstore.NetServer"),
	}
}

// asyncReq is one connection request in flight through the submission
// queues; the drain loop fills resp before resolving the future.
type asyncReq struct {
	clientID int
	req      workload.Request
	resp     Response
}

// NewBatchedNetServerPool wraps a Pool for TCP serving through the
// asynchronous submission layer: instead of every connection contending
// on the shard locks, connections enqueue into bounded per-shard
// queues (internal/submit) and one drain loop per shard coalesces up
// to maxBatch queued requests into a single pipelined
// Server.HandleBatch — one domain Enter per worker group instead of per
// request. maxInflight bounds admitted-but-unanswered requests across
// the pool (<= 0 means 1024); at capacity new requests are answered
// SERVER_ERROR immediately with a deterministic cycles-quantized retry
// hint (admission control / backpressure). Call Close after Serve
// returns to stop the drain loops.
func NewBatchedNetServerPool(p *Pool, logger *log.Logger, maxInflight, maxBatch int) (*NetServer, error) {
	if maxInflight <= 0 {
		maxInflight = 1024
	}
	depth := maxInflight / p.Workers()
	if depth < 1 {
		depth = 1
	}
	// n is assigned below; the drain loops only observe it after a task
	// travels through a queue, which happens-after the constructor
	// returns.
	var n *NetServer
	q, err := submit.New(submit.Config{
		Workers:  p.Workers(),
		Depth:    depth,
		MaxBatch: maxBatch,
		Exec: func(si int, tasks []*submit.Task) {
			batch := make([]BatchRequest, len(tasks))
			for i, t := range tasks {
				a := t.Payload.(*asyncReq)
				batch[i] = BatchRequest{Ctx: t.Ctx, ClientID: a.clientID, Req: a.req}
			}
			resps := p.handleBatch(si, batch)
			for i, t := range tasks {
				t.Payload.(*asyncReq).resp = resps[i]
				t.Resolve(nil)
			}
			// Elastic evaluation is event-driven (per executed batch):
			// no wall-clock timers on the simulated-machine side.
			n.maybeScale()
		},
	})
	if err != nil {
		return nil, err
	}
	n = servingNet(&NetServer{
		log:       logger,
		stats:     func(w io.Writer) error { return WriteStats(w, p) },
		scanFn:    p.Scan,
		queues:    q,
		workers:   p.Workers(),
		healthFn:  p.Health,
		drainFn:   p.Drain,
		closeFn:   p.Close,
		resizeFn:  p.ResizeWorkers,
		workersFn: p.ShardWorkers,
	})
	n.handle = func(ctx context.Context, clientID int, req workload.Request) Response {
		a := &asyncReq{clientID: clientID, req: req}
		fut, err := q.Submit(p.shardIndex(req.Key), ctx, a)
		if err != nil {
			// Overload (queue full) or closed: shed the request. An
			// overload is decorated with a deterministic retry hint derived
			// from the configured queue depth — the bare OverloadError's
			// occupancy detail is timing-dependent and must not reach the
			// wire (campaign traces pin the rejection bytes).
			if _, over := submit.IsOverload(err); over {
				err = &gateway.RetryHintError{
					Cycles: gateway.QuantizeRetryCycles(uint64(q.Depth()) * overloadRetryCyclesPerSlot),
					Cause:  err,
				}
			}
			return Response{Err: err}
		}
		// The future resolves when the drain loop answered; the request's
		// ctx still governs its in-domain budget (deadlines that expire
		// while queued surface as preemptions, as on the serial path).
		return respondAsync(a, fut)
	}
	return n, nil
}

// respondAsync maps an admitted request's future onto its wire
// response, waiting for resolution. A non-nil resolution means the
// drain loop never filled resp (the queues closed underneath the
// admitted request), so the typed error must reach the wire instead of
// a zero-value Response.
func respondAsync(a *asyncReq, fut *submit.Future) Response {
	if ferr := fut.Err(); ferr != nil {
		return Response{Err: ferr}
	}
	return a.resp
}

// SetGateway installs the tenant admission front tier: data commands
// then require a successful auth command on the connection and pass
// per-tenant admission before executing. Call before Serve.
func (n *NetServer) SetGateway(gw *gateway.Gateway) { n.gw = gw }

// Close stops the batched submission layer (queued requests are
// answered, drain loops exit) and releases the underlying server or
// pool, propagating its error. Idempotent: later calls return the first
// outcome. Serve must have returned (or never been called).
func (n *NetServer) Close() error { return n.lc.Close(n.closeImpl) }

// Stop is the strict lifecycle form of Close: same teardown, but a
// second Stop returns a typed *LifecycleError instead of the memoized
// outcome. ctx is accepted for interface symmetry; teardown is bounded
// by the queue flush and store backends, not the context.
func (n *NetServer) Stop(ctx context.Context) error {
	_ = ctx
	return n.lc.Stop(n.closeImpl)
}

// closeImpl is the teardown the lifecycle machine memoizes.
func (n *NetServer) closeImpl() error {
	if n.queues != nil {
		n.queues.Flush()
		n.queues.Close()
	}
	if n.closeFn != nil {
		return n.closeFn()
	}
	return nil
}

// Init advances the lifecycle machine past resource allocation (the
// wrapped server or pool was allocated at construction). Only servers
// from NewDeferredNetServerPool need it; the eager constructors have
// already advanced the machine.
func (n *NetServer) Init() error { return n.lc.Init(nil) }

// Start moves the server to StateHealthy (see Init).
func (n *NetServer) Start() error { return n.lc.Start(nil) }

// State returns the server's lifecycle state.
func (n *NetServer) State() lifecycle.State { return n.lc.State() }

// Drain shuts the server down gracefully, in the order that makes
// "every ack durable, nothing after" true: (1) stop admission — the
// gateway rejects new arrivals with *DrainingError; (2) flush the
// submission queues — every admitted request executes and its batch
// group-commits to the WAL before its ack is written; (3) close the
// queues — stragglers get typed ErrClosed; (4) drain the shards — final
// WAL commit, snapshot, store release, and the ErrDrained gate for any
// request that still reaches a shard. Idempotent: later calls return
// the first outcome.
func (n *NetServer) Drain() error {
	return n.lc.Drain(func() error {
		if n.gw != nil {
			n.gw.StartDrain()
		}
		if n.queues != nil {
			n.queues.Flush()
			n.queues.Close()
		}
		if n.drainFn != nil {
			return n.drainFn()
		}
		return nil
	})
}

// Draining reports whether Drain has been called (and Stop has not yet
// superseded it).
func (n *NetServer) Draining() bool {
	return n.lc.State() == lifecycle.StateDraining
}

// ResizeWorkers grows or shrinks the parser worker-domain set of the
// wrapped server (or of every shard of the wrapped pool) to k. Legal
// while Healthy or Degraded.
func (n *NetServer) ResizeWorkers(k int) error {
	if err := n.lc.Resizable(); err != nil {
		return err
	}
	if n.resizeFn == nil {
		return fmt.Errorf("kvstore: resize workers: server has no resizable backend")
	}
	return n.resizeFn(k)
}

// netElastic is the parser-worker autoscaler state. The controller is
// deliberately wall-clock-free: it evaluates once per executed batch
// (an event the virtual-time side already generates) and scales from
// submission-queue backlog.
type netElastic struct {
	min, max int
	// idle counts consecutive low-backlog evaluations; netShrinkIdleEvals
	// of them halve the worker set.
	idle    int
	grown   uint64
	shrunk  uint64
	maxSeen int
}

// netShrinkIdleEvals is the number of consecutive low-backlog batch
// evaluations before the elastic controller shrinks.
const netShrinkIdleEvals = 16

// EnableElastic turns on parser-worker autoscaling between min and max
// workers per shard: the worker set doubles when the queued backlog
// reaches two batches per live worker and halves after a sustained idle
// stretch. Requires a batched pool server; call before Serve. The
// server starts at min workers.
func (n *NetServer) EnableElastic(min, max int) error {
	if err := n.lc.Resizable(); err != nil {
		return err
	}
	if n.queues == nil || n.resizeFn == nil {
		return fmt.Errorf("kvstore: elastic mode needs a batched pool server")
	}
	if min < 1 || max < min || max > MaxResizeWorkers {
		return fmt.Errorf("kvstore: elastic bounds [%d, %d] out of range [1, %d]", min, max, MaxResizeWorkers)
	}
	if err := n.resizeFn(min); err != nil {
		return err
	}
	n.elasticMu.Lock()
	defer n.elasticMu.Unlock()
	n.elastic = &netElastic{min: min, max: max, maxSeen: min}
	return nil
}

// NetElasticStats reports the autoscaler's activity.
type NetElasticStats struct {
	// Grown and Shrunk count resize operations in each direction.
	Grown, Shrunk uint64
	// MaxWorkers is the highest per-shard worker count reached; Workers
	// is the current one.
	MaxWorkers, Workers int
}

// ElasticStats returns the autoscaler's counters (zero value when
// elastic mode is off).
func (n *NetServer) ElasticStats() NetElasticStats {
	n.elasticMu.Lock()
	defer n.elasticMu.Unlock()
	if n.elastic == nil {
		return NetElasticStats{}
	}
	return NetElasticStats{
		Grown:      n.elastic.grown,
		Shrunk:     n.elastic.shrunk,
		MaxWorkers: n.elastic.maxSeen,
		Workers:    n.workersFn(),
	}
}

// maybeScale runs one elastic evaluation: grow (double, capped) when
// the queued backlog reaches two requests per live worker per shard,
// shrink (halve, floored) after netShrinkIdleEvals consecutive
// evaluations with at most one queued request per live worker.
func (n *NetServer) maybeScale() {
	n.elasticMu.Lock()
	defer n.elasticMu.Unlock()
	e := n.elastic
	if e == nil {
		return
	}
	perShard := n.queues.TotalLoad() / int64(n.workers)
	cur := n.workersFn()
	switch {
	case perShard >= int64(2*cur) && cur < e.max:
		next := cur * 2
		if next > e.max {
			next = e.max
		}
		if err := n.resizeFn(next); err == nil {
			e.grown++
			e.idle = 0
			if next > e.maxSeen {
				e.maxSeen = next
			}
		}
	case perShard <= int64(cur):
		e.idle++
		if e.idle >= netShrinkIdleEvals && cur > e.min {
			next := cur / 2
			if next < e.min {
				next = e.min
			}
			if err := n.resizeFn(next); err == nil {
				e.shrunk++
			}
			e.idle = 0
		}
	default:
		e.idle = 0
	}
}

// Interface compliance: the net server implements the shared lifecycle
// contract.
var _ lifecycle.Component = (*NetServer)(nil)

// SetRequestTimeout installs a per-request deadline (0 disables it, the
// default). Call before Serve.
func (n *NetServer) SetRequestTimeout(d time.Duration) { n.reqTimeout = d }

func (n *NetServer) logf(format string, args ...any) {
	if n.log != nil {
		n.log.Printf(format, args...)
	}
}

// Serve accepts connections on ln until it is closed, then waits for
// in-flight connections to finish.
func (n *NetServer) Serve(ln net.Listener) error {
	defer n.wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("kvstore: accept: %w", err)
		}
		n.connMu.Lock()
		n.nextID++
		id := n.nextID
		n.connMu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				if cerr := conn.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
					n.logf("conn %d close: %v", id, cerr)
				}
			}()
			n.serveConn(id, conn)
		}()
	}
}

// serveConn runs the command loop for one connection. With a gateway
// installed the connection carries tenant state: data commands require
// a prior successful auth command and pass per-tenant admission.
func (n *NetServer) serveConn(id int, conn io.ReadWriter) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	tenant := ""
	authed := false
	for {
		cmd, err := ReadCommand(r)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				_, _ = fmt.Fprintf(w, "CLIENT_ERROR %v\r\n", err)
				_ = w.Flush()
			}
			return
		}
		switch {
		case cmd.Quit:
			_ = w.Flush()
			return
		case cmd.Auth:
			err = n.handleAuth(w, cmd.Token, &tenant, &authed)
		case cmd.Health:
			err = n.writeHealth(w)
		case cmd.Stats:
			err = n.stats(w)
		case cmd.Scan:
			err = n.handleScan(w, cmd, tenant, authed)
		default:
			req := cmd.Req
			if bytes.HasPrefix(req.Value, []byte(AttackMarker)) {
				req.Malicious = true
			}
			err = n.handleData(w, id, req, tenant, authed)
		}
		if err != nil {
			n.logf("conn %d write: %v", id, err)
			return
		}
		if err := w.Flush(); err != nil {
			n.logf("conn %d flush: %v", id, err)
			return
		}
	}
}

// handleAuth binds the connection to a tenant. Every failure mode
// answers the same uniform line — the response never reveals whether
// the token was close to (or part of) a valid credential.
func (n *NetServer) handleAuth(w io.Writer, token string, tenant *string, authed *bool) error {
	if n.gw == nil {
		_, err := io.WriteString(w, "CLIENT_ERROR gateway disabled\r\n")
		return err
	}
	name, aerr := n.gw.Authenticate([]byte(token))
	if aerr != nil {
		*tenant = ""
		*authed = false
		n.logf("auth rejected: %v", aerr)
		_, err := io.WriteString(w, "CLIENT_ERROR unauthorized\r\n")
		return err
	}
	*tenant = name
	*authed = true
	_, err := io.WriteString(w, "OK\r\n")
	return err
}

// handleData executes one data command, running gateway admission first
// when a gateway is installed: rejections become SERVER_ERROR lines
// carrying the typed error's deterministic rendering, and admitted
// requests report their outcome (contained violation, budget
// preemption) back to the tenant's circuit breaker.
func (n *NetServer) handleData(w io.Writer, id int, req workload.Request, tenant string, authed bool) error {
	if n.gw == nil {
		resp := n.handleTimed(id, req)
		if resp.Contained {
			n.logf("conn %d: contained memory-safety violation (domain rewound)", id)
		}
		return WriteResponse(w, req, resp)
	}
	if !authed {
		_, err := io.WriteString(w, "CLIENT_ERROR auth required\r\n")
		return err
	}
	ticket, aerr := n.gw.Admit(tenant)
	if aerr != nil {
		return WriteResponse(w, req, Response{Err: aerr})
	}
	resp := n.handleTimed(id, req)
	_, preempted := core.IsBudget(resp.Err)
	ticket.Done(resp.Contained, preempted)
	if resp.Contained {
		n.logf("conn %d: tenant %s: contained memory-safety violation (domain rewound)", id, tenant)
	}
	return WriteResponse(w, req, resp)
}

// handleScan serves one paginated scan page. With a gateway installed,
// every page is charged one admission token against the tenant's quota
// — pagination is the anti-starvation contract: a tenant walking the
// whole table re-enters admission per page and cannot lock others out
// with one giant request.
func (n *NetServer) handleScan(w io.Writer, cmd Command, tenant string, authed bool) error {
	if n.scanFn == nil {
		_, err := io.WriteString(w, "CLIENT_ERROR scan disabled\r\n")
		return err
	}
	var ticket *gateway.Ticket
	if n.gw != nil {
		if !authed {
			_, err := io.WriteString(w, "CLIENT_ERROR auth required\r\n")
			return err
		}
		t, aerr := n.gw.Admit(tenant)
		if aerr != nil {
			_, err := fmt.Fprintf(w, "SERVER_ERROR %s\r\n", aerr)
			return err
		}
		ticket = t
	}
	res, serr := n.scanFn(cmd.ScanPrefix, cmd.ScanCursor, cmd.ScanLimit)
	if ticket != nil {
		ticket.Done(false, false)
	}
	if serr != nil {
		_, err := fmt.Fprintf(w, "SERVER_ERROR %s\r\n", serr)
		return err
	}
	return WriteScanResponse(w, res)
}

// writeHealth renders the lifecycle health document as STAT lines: the
// summary state, drain flag, worker count, per-shard states, and (with
// a gateway) per-tenant counters, all in deterministic order.
func (n *NetServer) writeHealth(w io.Writer) error {
	var shards []gateway.ShardHealth
	if n.healthFn != nil {
		shards = n.healthFn()
	}
	var tenants []metrics.TenantSnapshot
	draining := n.Draining()
	if n.gw != nil {
		draining = draining || n.gw.Draining()
		tenants = n.gw.Stats().Snapshot()
	}
	h := gateway.BuildHealth(draining, n.workers, shards, tenants)
	drainInt := 0
	if h.Draining {
		drainInt = 1
	}
	if _, err := fmt.Fprintf(w, "STAT state %s\r\nSTAT draining %d\r\nSTAT workers %d\r\n",
		h.State, drainInt, h.Workers); err != nil {
		return err
	}
	for _, sh := range h.Shards {
		if _, err := fmt.Fprintf(w, "STAT shard_%d %s\r\n", sh.Shard, sh.State); err != nil {
			return err
		}
	}
	for _, t := range h.Tenants {
		if _, err := fmt.Fprintf(w,
			"STAT tenant_%s admitted=%d completed=%d throttled=%d quota=%d quarantine=%d drained=%d detections=%d preemptions=%d quarantines=%d\r\n",
			t.Tenant, t.Admitted, t.Completed, t.Throttled, t.QuotaRejected, t.QuarantineRejected,
			t.Drained, t.Detections, t.Preemptions, t.Quarantines); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "END\r\n")
	return err
}

// handleTimed wraps handle with the per-request deadline, when one is
// configured.
func (n *NetServer) handleTimed(id int, req workload.Request) Response {
	ctx := context.Background()
	if n.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, n.reqTimeout)
		defer cancel()
	}
	return n.handle(ctx, id, req)
}
