package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"repro/internal/core"
)

// startNet spins up a real TCP listener backed by a fresh server and
// returns its address plus a shutdown func.
func startNet(t *testing.T, mode Mode) (string, func()) {
	t.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := NewCache(sys, 1, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sys, cache, ServerConfig{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ns := NewNetServer(srv, nil)
	done := make(chan error, 1)
	go func() { done <- ns.Serve(ln) }()
	return ln.Addr().String(), func() {
		if err := ln.Close(); err != nil {
			t.Errorf("close listener: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

// talkErr sends a protocol script and returns everything the server
// wrote back until the connection closed. Safe to call from any
// goroutine.
func talkErr(addr, script string) (string, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return "", err
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte(script)); err != nil {
		return "", err
	}
	var out strings.Builder
	r := bufio.NewReader(conn)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		out.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return out.String(), nil
}

// talk is talkErr with test-fatal error handling (test goroutine only).
func talk(t *testing.T, addr, script string) string {
	t.Helper()
	out, err := talkErr(addr, script)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestNetServerEndToEnd(t *testing.T) {
	addr, stop := startNet(t, ModeSDRaD)
	defer stop()

	out := talk(t, addr, "set k 0 0 5\r\nhello\r\nget k\r\ndelete k\r\nget k\r\nquit\r\n")
	want := "STORED\r\nVALUE k 0 5\r\nhello\r\nEND\r\nDELETED\r\nEND\r\n"
	if out != want {
		t.Errorf("transcript = %q, want %q", out, want)
	}
}

func TestNetServerContainsWireAttack(t *testing.T) {
	addr, stop := startNet(t, ModeSDRaD)
	defer stop()

	// Store a victim value first.
	if out := talk(t, addr, "set victim 0 0 4\r\nsafe\r\nquit\r\n"); out != "STORED\r\n" {
		t.Fatalf("setup: %q", out)
	}
	// Fire the exploit payload.
	evil := fmt.Sprintf("set x 0 0 %d\r\n%s\r\nquit\r\n", len(AttackMarker), AttackMarker)
	out := talk(t, addr, evil)
	if !strings.HasPrefix(out, "SERVER_ERROR") {
		t.Errorf("attack response = %q, want SERVER_ERROR", out)
	}
	// Service and victim data intact; stats show the containment.
	out = talk(t, addr, "get victim\r\nstats\r\nquit\r\n")
	if !strings.Contains(out, "VALUE victim 0 4\r\nsafe") {
		t.Errorf("victim lost: %q", out)
	}
	if !strings.Contains(out, "STAT contained_violations 1") {
		t.Errorf("stats missing containment: %q", out)
	}
	if !strings.Contains(out, "STAT crashes 0") {
		t.Errorf("unexpected crash: %q", out)
	}
}

func TestNetServerMalformedCommand(t *testing.T) {
	addr, stop := startNet(t, ModeSDRaD)
	defer stop()
	out := talk(t, addr, "frobnicate\r\n")
	if !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Errorf("malformed = %q", out)
	}
}

func TestNetServerConcurrentClients(t *testing.T) {
	addr, stop := startNet(t, ModeSDRaD)
	defer stop()

	const clients = 8
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			key := fmt.Sprintf("k%d", c)
			val := fmt.Sprintf("value-%d", c)
			script := fmt.Sprintf("set %s 0 0 %d\r\n%s\r\nget %s\r\nquit\r\n", key, len(val), val, key)
			out, err := talkErr(addr, script)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
				return
			}
			want := fmt.Sprintf("STORED\r\nVALUE %s 0 %d\r\n%s\r\nEND\r\n", key, len(val), val)
			if out != want {
				errs <- fmt.Errorf("client %d: %q != %q", c, out, want)
				return
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}
