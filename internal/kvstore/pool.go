package kvstore

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/lifecycle"
	"repro/internal/workload"
)

// Pool shards the key-value store across N workers, each a full Server —
// private simulated machine, storage domain, cache shard, and worker
// domains. The single-Server path serializes every request behind one
// simulated core; the pool gives each shard its own core, so requests for
// keys on different shards execute concurrently (the memcached scale-out
// pattern). Keys map to shards by hash, which keeps every key's reads and
// writes on one cache shard — the consistency invariant.
//
// Pool is safe for concurrent use; per-shard locking upholds each
// simulated machine's single-goroutine contract.
type Pool struct {
	shards []*kvShard

	// lc is the shared lifecycle state machine (internal/lifecycle): it
	// memoizes Close (a second Close must not re-run the shard closes —
	// a released store double-closing is a correctness bug — and must
	// report the same outcome as the first), memoizes Drain, and rejects
	// illegal transitions with a typed *LifecycleError.
	lc *lifecycle.Machine

	// Deferred-construction inputs, consumed by Init.
	syscfg   core.Config
	cfg      ServerConfig
	n        int
	capacity uint64
}

type kvShard struct {
	mu    sync.Mutex
	srv   *Server
	cache *Cache
}

// StorageUDIForPool is the UDI each shard's storage domain uses.
const StorageUDIForPool core.UDI = 1

// NewPool builds n shards (n <= 0 means 1). Each shard gets a fresh
// core.System from syscfg, a cache with capacity/n bytes, and a Server
// configured by cfg. The pool's total capacity matches a single server
// of the same capacity, except that each shard is floored at
// MaxValueSize (a shard that cannot hold one maximum item would reject
// valid requests), so total capacity is at least n*MaxValueSize.
func NewPool(syscfg core.Config, cfg ServerConfig, n int, capacity uint64) (*Pool, error) {
	p := NewDeferredPool(syscfg, cfg, n, capacity)
	if err := p.Init(); err != nil {
		return nil, err
	}
	if err := p.Start(); err != nil {
		return nil, err
	}
	return p, nil
}

// NewDeferredPool constructs a pool without allocating its shards: the
// lifecycle pattern's cheap construction. Call Init to build the shards
// and Start to serve; NewPool does all three.
func NewDeferredPool(syscfg core.Config, cfg ServerConfig, n int, capacity uint64) *Pool {
	if n <= 0 {
		n = 1
	}
	if capacity == 0 {
		capacity = 64 << 20
	}
	return &Pool{
		lc:       lifecycle.NewMachine("kvstore.Pool"),
		syscfg:   syscfg,
		cfg:      cfg,
		n:        n,
		capacity: capacity,
	}
}

// Init builds the pool's shards — each a fresh core.System, cache
// shard, and Server. Legal exactly once, from StateInitializing; a
// failed Init releases the shards it built and may be retried.
func (p *Pool) Init() error {
	return p.lc.Init(func() error {
		perShard := p.capacity / uint64(p.n)
		if perShard < MaxValueSize {
			perShard = MaxValueSize
		}
		shards := make([]*kvShard, p.n)
		for i := range shards {
			sys := core.NewSystem(p.syscfg)
			cache, err := NewCache(sys, StorageUDIForPool, perShard)
			if err != nil {
				closeShards(shards[:i])
				return fmt.Errorf("kvstore: pool shard %d: %w", i, err)
			}
			// Persistence shards with the keys: each shard owns a private
			// store directory (its keys never migrate, so its WAL+snapshot
			// are self-contained and shards recover independently).
			shardCfg := p.cfg
			if p.cfg.Persist != nil && p.cfg.Persist.Dir != "" {
				pc := *p.cfg.Persist
				pc.Dir = filepath.Join(p.cfg.Persist.Dir, fmt.Sprintf("shard-%02d", i))
				shardCfg.Persist = &pc
			}
			srv, err := NewServer(sys, cache, shardCfg)
			if err != nil {
				closeShards(shards[:i])
				return fmt.Errorf("kvstore: pool shard %d: %w", i, err)
			}
			shards[i] = &kvShard{srv: srv, cache: cache}
		}
		p.shards = shards
		return nil
	})
}

// closeShards best-effort-releases partially built shards after a
// failed Init; the init failure is the error callers must see.
func closeShards(shards []*kvShard) {
	for _, sh := range shards {
		if sh != nil {
			_ = sh.srv.Close() //lint:errclass best-effort unwind; the init failure is the error callers must see
		}
	}
}

// Start moves the pool to StateHealthy. Legal exactly once, after Init;
// the shards themselves serve from construction, so Start is purely a
// lifecycle transition.
func (p *Pool) Start() error { return p.lc.Start(nil) }

// State returns the pool's lifecycle state.
func (p *Pool) State() lifecycle.State { return p.lc.State() }

// Close flushes and releases every shard's durability backend (no-op
// for memory-only pools). The first error wins; every shard is still
// closed. Idempotent: later calls return the first call's outcome
// without touching the shards again.
func (p *Pool) Close() error { return p.lc.Close(p.teardown) }

// Stop is the strict lifecycle form of Close: same teardown, but a
// second Stop returns a typed *LifecycleError instead of the memoized
// outcome. ctx is accepted for interface symmetry; shard teardown is
// bounded by the store backends, not the context.
func (p *Pool) Stop(ctx context.Context) error {
	_ = ctx
	return p.lc.Stop(p.teardown)
}

// teardown closes every shard; first error wins.
func (p *Pool) teardown() error {
	var first error
	for i, sh := range p.shards {
		sh.mu.Lock()
		err := sh.srv.Close()
		sh.mu.Unlock()
		if err != nil && first == nil {
			first = fmt.Errorf("kvstore: pool shard %d: %w", i, err)
		}
	}
	return first
}

// Drain drains every shard gracefully (Server.Drain: flush, snapshot,
// release, stop accepting) under the shard locks, so the drained flag
// and the last WAL commit are one atomic step per shard — a request
// racing the drain either executes fully durable or is rejected with
// ErrDrained, never acked-but-lost. First error wins; every shard is
// still drained. Idempotent: later calls return the first outcome.
func (p *Pool) Drain() error {
	return p.lc.Drain(func() error {
		var first error
		for i, sh := range p.shards {
			sh.mu.Lock()
			err := sh.srv.Drain()
			sh.mu.Unlock()
			if err != nil && first == nil {
				first = fmt.Errorf("kvstore: pool shard %d drain: %w", i, err)
			}
		}
		return first
	})
}

// ResizeWorkers grows or shrinks every shard's parser worker-domain set
// to n (SDRaD mode only). Shards themselves cannot resize — key
// placement is part of the store's identity — but the per-client parser
// domains are pristine between requests, so their count is purely a
// concurrency knob. Legal while Healthy or Degraded; a partial failure
// leaves shards at different counts and reports the first error.
func (p *Pool) ResizeWorkers(n int) error {
	if err := p.lc.Resizable(); err != nil {
		return err
	}
	var first error
	for i, sh := range p.shards {
		sh.mu.Lock()
		err := sh.srv.ResizeWorkers(n)
		sh.mu.Unlock()
		if err != nil && first == nil {
			first = fmt.Errorf("kvstore: pool shard %d resize: %w", i, err)
		}
	}
	return first
}

// ShardWorkers returns shard 0's parser worker-domain count (every
// shard is kept at the same count by ResizeWorkers).
func (p *Pool) ShardWorkers() int {
	sh := p.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.srv.Workers()
}

// Interface compliance: the pool implements the shared lifecycle
// contract.
var _ lifecycle.Component = (*Pool)(nil)

// Health reports each shard's serving state for the lifecycle
// endpoints: fail-stop dominates, then drained, then degraded
// (log-only after a snapshot failure), then ok.
func (p *Pool) Health() []gateway.ShardHealth {
	out := make([]gateway.ShardHealth, len(p.shards))
	for i, sh := range p.shards {
		sh.mu.Lock()
		h := gateway.ShardHealth{Shard: i, State: gateway.ShardOK}
		switch {
		case sh.srv.PersistErr() != nil:
			h.State = gateway.ShardFailStop
			h.Detail = sh.srv.PersistErr().Error()
		case sh.srv.Drained():
			h.State = gateway.ShardDrained
		case sh.srv.SnapshotErr() != nil:
			h.State = gateway.ShardDegraded
			h.Detail = sh.srv.SnapshotErr().Error()
		}
		sh.mu.Unlock()
		out[i] = h
	}
	return out
}

// Shard returns shard i's server, for tests that need to reach a
// specific shard's durability backend.
func (p *Pool) Shard(i int) *Server { return p.shards[i].srv }

// Workers returns the number of shards.
func (p *Pool) Workers() int { return len(p.shards) }

// Capacity returns the pool's effective total cache capacity — the sum
// of the shard capacities, which exceeds the requested capacity when the
// per-shard MaxValueSize floor kicked in.
func (p *Pool) Capacity() uint64 {
	var n uint64
	for _, sh := range p.shards {
		n += sh.cache.Capacity()
	}
	return n
}

// Mode returns the pool's resilience mode.
func (p *Pool) Mode() Mode { return p.shards[0].srv.Mode() }

// FNV-1a constants (hash/fnv), inlined so the per-request dispatch path
// allocates nothing.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// shardIndex maps a key to its shard index; every operation on a key
// lands on the same cache shard. The modulo runs in uint32 so the index
// stays non-negative on 32-bit platforms.
func (p *Pool) shardIndex(key string) int {
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return int(h % uint32(len(p.shards)))
}

func (p *Pool) shardFor(key string) *kvShard {
	return p.shards[p.shardIndex(key)]
}

// Handle serves one request on the shard owning req.Key. It is
// HandleContext with a background context.
func (p *Pool) Handle(clientID int, req workload.Request) Response {
	return p.HandleContext(context.Background(), clientID, req)
}

// HandleContext serves one request on the shard owning req.Key; the
// context's deadline bounds the in-domain run (see Server.HandleContext).
func (p *Pool) HandleContext(ctx context.Context, clientID int, req workload.Request) Response {
	sh := p.shardFor(req.Key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.srv.HandleContext(ctx, clientID, req)
}

// handleBatch serves a batch of requests that all hash to shard si as
// one pipelined unit (Server.HandleBatch) under the shard lock. The
// batched NetServer's per-shard submission queues uphold the
// same-shard precondition.
func (p *Pool) handleBatch(si int, batch []BatchRequest) []Response {
	sh := p.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.srv.HandleBatch(batch)
}

// Stats aggregates server accounting across shards.
func (p *Pool) Stats() ServerStats {
	var agg ServerStats
	for _, sh := range p.shards {
		sh.mu.Lock()
		st := sh.srv.Stats()
		sh.mu.Unlock()
		agg.Requests += st.Requests
		agg.Violations += st.Violations
		agg.Crashes += st.Crashes
		agg.Dropped += st.Dropped
		agg.Preempted += st.Preempted
	}
	return agg
}

// CacheStats aggregates cache counters across shards.
func (p *Pool) CacheStats() CacheStats {
	var agg CacheStats
	for _, sh := range p.shards {
		sh.mu.Lock()
		cs := sh.cache.Stats()
		sh.mu.Unlock()
		agg.Hits += cs.Hits
		agg.Misses += cs.Misses
		agg.Evictions += cs.Evictions
		agg.Expired += cs.Expired
	}
	return agg
}

// CacheBytes returns the summed stored bytes across shards.
func (p *Pool) CacheBytes() uint64 {
	var n uint64
	for _, sh := range p.shards {
		sh.mu.Lock()
		n += sh.cache.Bytes()
		sh.mu.Unlock()
	}
	return n
}

// CacheItems returns the summed item count across shards.
func (p *Pool) CacheItems() int {
	var n int
	for _, sh := range p.shards {
		sh.mu.Lock()
		n += sh.cache.Items()
		sh.mu.Unlock()
	}
	return n
}

// VirtualTime returns the pool's parallel makespan: the maximum virtual
// time across shards, which run concurrently.
func (p *Pool) VirtualTime() time.Duration {
	var max time.Duration
	for _, sh := range p.shards {
		sh.mu.Lock()
		vt := sh.srv.sys.Clock().Now()
		sh.mu.Unlock()
		if vt > max {
			max = vt
		}
	}
	return max
}

// TotalVirtualTime returns the summed virtual CPU time across shards.
func (p *Pool) TotalVirtualTime() time.Duration {
	var sum time.Duration
	for _, sh := range p.shards {
		sh.mu.Lock()
		sum += sh.srv.sys.Clock().Now()
		sh.mu.Unlock()
	}
	return sum
}

// Warmup bulk-loads approximately stateBytes of valueSize-byte items,
// spread across shards by the same key hash Handle uses. A shard that
// fills is skipped while the others keep loading; Warmup returns the
// number of items stored once the target or every shard's capacity is
// reached.
func (p *Pool) Warmup(stateBytes uint64, valueSize int) (int, error) {
	if valueSize <= 0 {
		valueSize = 4096
	}
	val := make([]byte, valueSize)
	items := 0
	var loaded uint64
	full := make([]bool, len(p.shards))
	fullCount := 0
	for k := 0; loaded+uint64(valueSize) <= stateBytes && fullCount < len(p.shards); k++ {
		key := workload.Key(k)
		si := p.shardIndex(key)
		if full[si] {
			continue
		}
		sh := p.shards[si]
		sh.mu.Lock()
		if sh.cache.Bytes()+uint64(valueSize) > sh.cache.Capacity() {
			sh.mu.Unlock()
			full[si] = true
			fullCount++
			continue
		}
		err := sh.cache.Set(key, val)
		sh.mu.Unlock()
		if err != nil {
			return items, fmt.Errorf("kvstore: pool warmup item %d: %w", items, err)
		}
		loaded += uint64(valueSize)
		items++
	}
	return items, nil
}
