package kvstore

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// This file is the pool surface the cluster tier (internal/cluster)
// builds on: trusted-side replica application (log shipping — a
// mutation the primary already parsed, admitted, and acknowledged is
// applied without re-execution), whole-pool state dumps for handoff
// syncs and survivor digests, and mixed-key batch handling for the
// cluster router's batched dispatch path.

// Apply performs a trusted-side apply of an acknowledged mutation: the
// cache operation plus, on durable servers, its WAL group commit — but
// no domain parse and no fault injection, because the mutation already
// went through both on the slot's primary. The drain and fail-stop
// gates still hold: a drained or fail-stopped replica refuses the
// apply, surfacing the inconsistency instead of diverging silently.
// GETs are rejected — only mutations ship between replicas.
func (s *Server) Apply(req workload.Request) error {
	if s.drained {
		return ErrDrained
	}
	if s.persistErr != nil {
		return s.failStopResponse().Err
	}
	switch req.Op {
	case workload.OpSet:
		if err := s.cache.SetItem(req.Key, req.Value, req.TTL, req.Flags); err != nil {
			return err
		}
		s.stageSet(req.Key, req.Flags, req.Value)
	case workload.OpDelete:
		found, err := s.cache.Delete(req.Key)
		if err != nil {
			return err
		}
		if found {
			s.stageDelete(req.Key)
		}
	default:
		return fmt.Errorf("kvstore: apply: %v is not a mutation", req.Op)
	}
	return s.flushWAL()
}

// Apply routes a trusted-side replica apply to the shard owning
// req.Key (see Server.Apply).
func (p *Pool) Apply(req workload.Request) error {
	sh := p.shardFor(req.Key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.srv.Apply(req)
}

// DumpAll returns the pool's full key→value state — the union of the
// shard caches, which is disjoint by the key→shard invariant. It is
// the currency of cluster handoff syncs and survivor digests.
func (p *Pool) DumpAll() (map[string][]byte, error) {
	out := make(map[string][]byte)
	for i, sh := range p.shards {
		sh.mu.Lock()
		m, err := sh.cache.Dump()
		sh.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("kvstore: pool shard %d dump: %w", i, err)
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out[k] = m[k]
		}
	}
	return out, nil
}

// HandleBatchMixed serves a batch whose keys may span shards: requests
// are partitioned by the pool's key→shard hash, each shard group runs
// as one pipelined Server.HandleBatch (preserving the group's arrival
// order, which is every key's arrival order since a key maps to one
// shard), and responses return in the original positions. This is the
// cluster router's batched dispatch surface; the batched NetServer
// keeps its per-shard submission queues, which pre-partition instead.
func (p *Pool) HandleBatchMixed(batch []BatchRequest) []Response {
	out := make([]Response, len(batch))
	if len(batch) == 0 {
		return out
	}
	groups := make([][]int, len(p.shards))
	for i, r := range batch {
		si := p.shardIndex(r.Req.Key)
		groups[si] = append(groups[si], i)
	}
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		sub := make([]BatchRequest, len(idxs))
		for k, i := range idxs {
			sub[k] = batch[i]
		}
		for k, resp := range p.handleBatch(si, sub) {
			out[idxs[k]] = resp
		}
	}
	return out
}
