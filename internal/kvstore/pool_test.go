package kvstore

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func newKVPool(t *testing.T, workers int) *Pool {
	t.Helper()
	p, err := NewPool(core.DefaultConfig(), ServerConfig{Mode: ModeSDRaD}, workers, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPoolKeyAffinity verifies the consistency invariant: every
// operation on a key lands on the same shard, so a SET is visible to a
// later GET regardless of which client sends it.
func TestPoolKeyAffinity(t *testing.T) {
	p := newKVPool(t, 4)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%d", i)
		val := []byte(fmt.Sprintf("value-%d", i))
		if resp := p.Handle(i, workload.Request{Op: workload.OpSet, Key: key, Value: val}); resp.Err != nil || !resp.OK {
			t.Fatalf("set %s: %+v", key, resp)
		}
		// A different client reads it back.
		resp := p.Handle(i+1000, workload.Request{Op: workload.OpGet, Key: key})
		if resp.Err != nil || !resp.OK || string(resp.Value) != string(val) {
			t.Fatalf("get %s: %+v", key, resp)
		}
	}
	if got := p.CacheItems(); got != 64 {
		t.Errorf("CacheItems = %d, want 64", got)
	}
	if p.CacheBytes() == 0 {
		t.Error("CacheBytes = 0")
	}
}

// TestPoolParallelMixedWorkload hammers the pool from many goroutines
// (run under -race): benign traffic on per-goroutine keys plus periodic
// attacks, all contained, with shard counters summing to the aggregate.
func TestPoolParallelMixedWorkload(t *testing.T) {
	const goroutines, iterations = 8, 50
	p := newKVPool(t, 4)

	var wg sync.WaitGroup
	var attacks, failures atomic.Uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%10)
				if i%9 == g%9 {
					attacks.Add(1)
					resp := p.Handle(g, workload.Request{Op: workload.OpSet, Key: key,
						Value: []byte("boom"), Malicious: true})
					if !resp.Contained {
						t.Errorf("goroutine %d: attack not contained: %+v", g, resp)
						failures.Add(1)
					}
					continue
				}
				val := []byte(fmt.Sprintf("g%d-v%d", g, i))
				if resp := p.Handle(g, workload.Request{Op: workload.OpSet, Key: key, Value: val}); resp.Err != nil {
					t.Errorf("goroutine %d set: %v", g, resp.Err)
					failures.Add(1)
					continue
				}
				resp := p.Handle(g, workload.Request{Op: workload.OpGet, Key: key})
				if resp.Err != nil || !resp.OK || string(resp.Value) != string(val) {
					t.Errorf("goroutine %d get %s: err=%v ok=%v val=%q",
						g, key, resp.Err, resp.OK, resp.Value)
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d requests misbehaved", failures.Load())
	}
	st := p.Stats()
	if st.Violations != attacks.Load() {
		t.Errorf("aggregate Violations = %d, want %d", st.Violations, attacks.Load())
	}
	if st.Crashes != 0 {
		t.Errorf("Crashes = %d", st.Crashes)
	}
	// Per-shard violation counts sum to the aggregate.
	var shardSum uint64
	for _, sh := range p.shards {
		shardSum += sh.srv.Stats().Violations
	}
	if shardSum != st.Violations {
		t.Errorf("shard violations sum to %d, aggregate says %d", shardSum, st.Violations)
	}
}

// TestPoolNetServerEndToEnd drives the pooled TCP path: concurrent
// clients, a wire attack, and aggregated stats.
func TestPoolNetServerEndToEnd(t *testing.T) {
	p := newKVPool(t, 3)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ns := NewNetServerPool(p, nil)
	done := make(chan error, 1)
	go func() { done <- ns.Serve(ln) }()
	addr := ln.Addr().String()
	defer func() {
		if err := ln.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	const clients = 6
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			key, val := fmt.Sprintf("pk%d", c), fmt.Sprintf("pv-%d", c)
			script := fmt.Sprintf("set %s 0 0 %d\r\n%s\r\nget %s\r\nquit\r\n", key, len(val), val, key)
			out, err := talkErr(addr, script)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
				return
			}
			want := fmt.Sprintf("STORED\r\nVALUE %s 0 %d\r\n%s\r\nEND\r\n", key, len(val), val)
			if out != want {
				errs <- fmt.Errorf("client %d: %q != %q", c, out, want)
				return
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}

	// A wire attack is contained and shows up in aggregated stats.
	evil := fmt.Sprintf("set x 0 0 %d\r\n%s\r\nquit\r\n", len(AttackMarker), AttackMarker)
	if out := talk(t, addr, evil); !strings.HasPrefix(out, "SERVER_ERROR") {
		t.Errorf("attack response = %q", out)
	}
	out := talk(t, addr, "get pk0\r\nstats\r\nquit\r\n")
	if !strings.Contains(out, "VALUE pk0 0 4\r\npv-0") {
		t.Errorf("victim data lost: %q", out)
	}
	if !strings.Contains(out, "STAT contained_violations 1") {
		t.Errorf("stats missing containment: %q", out)
	}
	if !strings.Contains(out, "STAT crashes 0") {
		t.Errorf("unexpected crash: %q", out)
	}
}

// TestPoolWarmup bulk-loads across shards.
func TestPoolWarmup(t *testing.T) {
	p := newKVPool(t, 4)
	n, err := p.Warmup(1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("warmup loaded nothing")
	}
	if got := p.CacheItems(); got != n {
		t.Errorf("CacheItems = %d, want %d", got, n)
	}
	if p.CacheBytes() < uint64(n)*4096 {
		t.Errorf("CacheBytes = %d below payload bytes", p.CacheBytes())
	}
}

// TestPoolWarmupContinuesPastFullShard asks for more state than the
// pool holds: warmup must keep loading other shards after the first one
// fills, ending well past a single shard's capacity.
func TestPoolWarmupContinuesPastFullShard(t *testing.T) {
	// 2 shards, floored at MaxValueSize (1 MiB) each.
	p, err := NewPool(core.DefaultConfig(), ServerConfig{Mode: ModeSDRaD}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Capacity(); got != 2*MaxValueSize {
		t.Fatalf("Capacity = %d, want %d", got, 2*MaxValueSize)
	}
	if _, err := p.Warmup(4<<20, 4096); err != nil {
		t.Fatal(err)
	}
	// Key-hash skew fills one shard first; loading must continue on the
	// other, so the total clearly exceeds one shard's capacity.
	if got := p.CacheBytes(); got <= MaxValueSize {
		t.Errorf("CacheBytes = %d, want > one shard's %d", got, MaxValueSize)
	}
}
