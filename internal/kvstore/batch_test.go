package kvstore

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/submit"
	"repro/internal/workload"
)

// classifyResp reduces a Response to its outcome class, for
// batched==serial comparisons.
func classifyResp(r Response) string {
	switch {
	case r.Contained:
		return "contained"
	case r.Err != nil:
		return "error"
	case r.OK:
		return fmt.Sprintf("ok:%x", r.Value)
	default:
		return "miss"
	}
}

// TestHandleBatchMatchesSerial drives the same mixed benign/attack
// request stream through HandleContext and HandleBatch and asserts
// identical per-request outcomes and identical surviving cache state.
func TestHandleBatchMatchesSerial(t *testing.T) {
	build := func() (*Server, *Cache) {
		sys := core.NewSystem(core.DefaultConfig())
		cache, err := NewCache(sys, 1, 16<<20)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(sys, cache, ServerConfig{Mode: ModeSDRaD, InterArrival: time.Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		return srv, cache
	}
	requests := func() []workload.Request {
		gen, err := workload.NewKV(workload.KVConfig{Seed: 7, Keys: 64, ValueSize: 48})
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]workload.Request, 96)
		for i := range reqs {
			reqs[i] = gen.Next()
			if i%13 == 5 {
				reqs[i].Malicious = true
			}
		}
		return reqs
	}

	serialSrv, serialCache := build()
	serialOut := make([]string, 0, 96)
	for i, req := range requests() {
		serialOut = append(serialOut, classifyResp(serialSrv.Handle(i%8, req)))
	}

	batchSrv, batchCache := build()
	batchOut := make([]string, 0, 96)
	reqs := requests()
	for i := 0; i < len(reqs); i += 16 {
		batch := make([]BatchRequest, 16)
		for j := range batch {
			batch[j] = BatchRequest{ClientID: (i + j) % 8, Req: reqs[i+j]}
		}
		for _, resp := range batchSrv.HandleBatch(batch) {
			batchOut = append(batchOut, classifyResp(resp))
		}
	}

	for i := range serialOut {
		if serialOut[i] != batchOut[i] {
			t.Errorf("request %d: serial %q vs batched %q", i, serialOut[i], batchOut[i])
		}
	}
	if serialCache.Items() != batchCache.Items() || serialCache.Bytes() != batchCache.Bytes() {
		t.Errorf("survivor cache diverged: serial %d items/%d bytes vs batched %d items/%d bytes",
			serialCache.Items(), serialCache.Bytes(), batchCache.Items(), batchCache.Bytes())
	}
	sst, bst := serialSrv.Stats(), batchSrv.Stats()
	if sst.Violations != bst.Violations {
		t.Errorf("contained violations: serial %d vs batched %d", sst.Violations, bst.Violations)
	}
	if sst.Requests != bst.Requests {
		t.Errorf("request counts: serial %d vs batched %d", sst.Requests, bst.Requests)
	}
}

// TestHandleBatchAmortizesEntries: a batch of benign requests from one
// client uses one domain entry, not one per request.
func TestHandleBatchAmortizesEntries(t *testing.T) {
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := NewCache(sys, 1, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sys, cache, ServerConfig{Mode: ModeSDRaD, InterArrival: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]BatchRequest, 16)
	for i := range batch {
		batch[i] = BatchRequest{ClientID: 3, Req: workload.Request{Op: workload.OpSet, Key: workload.Key(i), Value: []byte("v")}}
	}
	for i, resp := range srv.HandleBatch(batch) {
		if resp.Err != nil || !resp.OK {
			t.Fatalf("request %d: %+v", i, resp)
		}
	}
	// All 16 requests map to worker 3%4; its domain saw one entry.
	d, err := sys.Domain(srv.cfg.FirstWorkerUDI + core.UDI(3%len(srv.workers)))
	if err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Entries != 1 {
		t.Errorf("batch of 16 used %d domain entries, want 1", st.Entries)
	}
}

// startBatchedNet spins up the pipelined (submission-queue) TCP server.
func startBatchedNet(t *testing.T, workers, maxInflight, maxBatch int) (string, *Pool, func()) {
	t.Helper()
	pool, err := NewPool(core.DefaultConfig(), ServerConfig{Mode: ModeSDRaD}, workers, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ns, err := NewBatchedNetServerPool(pool, nil, maxInflight, maxBatch)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ns.Serve(ln) }()
	return ln.Addr().String(), pool, func() {
		if err := ln.Close(); err != nil {
			t.Errorf("close listener: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		ns.Close()
	}
}

// TestBatchedNetServerEndToEnd exercises the full pipelined path over
// real sockets: set/get round trip, contained wire attack, and
// concurrent clients pipelining through the queues.
func TestBatchedNetServerEndToEnd(t *testing.T) {
	addr, pool, stop := startBatchedNet(t, 2, 256, 8)
	defer stop()

	out := talk(t, addr, "set k1 0 0 5\r\nhello\r\nget k1\r\nquit\r\n")
	if !strings.Contains(out, "STORED") || !strings.Contains(out, "hello") {
		t.Fatalf("round trip through batched server failed:\n%s", out)
	}
	// Contained attack: SERVER_ERROR for the attacker, service survives.
	out = talk(t, addr, "set bomb 0 0 14\r\n!!exploit-data\r\nquit\r\n")
	if !strings.Contains(out, "SERVER_ERROR") {
		t.Fatalf("attack not rejected:\n%s", out)
	}
	out = talk(t, addr, "get k1\r\nquit\r\n")
	if !strings.Contains(out, "hello") {
		t.Fatalf("service lost state after contained attack:\n%s", out)
	}
	if st := pool.Stats(); st.Violations == 0 {
		t.Error("no contained violation recorded")
	}

	// Concurrent pipelined clients.
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var script strings.Builder
			for i := 0; i < 20; i++ {
				fmt.Fprintf(&script, "set c%d-k%d 0 0 2\r\nvv\r\n", c, i)
			}
			script.WriteString("quit\r\n")
			resp, err := talkErr(addr, script.String())
			if err != nil {
				errCh <- err
				return
			}
			if got := strings.Count(resp, "STORED"); got != 20 {
				errCh <- fmt.Errorf("client %d: %d STORED, want 20", c, got)
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestBatchedNetServerOverloadSheds: with a tiny admission bound and a
// stalled consumer there is no unbounded queueing — excess requests get
// SERVER_ERROR. Exercised at the pool layer via the NetServer handle.
func TestBatchedNetServerOverload(t *testing.T) {
	pool, err := NewPool(core.DefaultConfig(), ServerConfig{Mode: ModeSDRaD}, 1, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := NewBatchedNetServerPool(pool, nil, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	// Saturate the single shard from many goroutines; with depth 2 and
	// batches of 2 some must be shed under a sustained burst.
	var wg sync.WaitGroup
	var overloads, ok int
	var mu sync.Mutex
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := workload.Request{Op: workload.OpSet, Key: "hot", Value: []byte("v")}
			resp := ns.handle(context.Background(), g, req)
			mu.Lock()
			defer mu.Unlock()
			if resp.Err != nil {
				if _, is := submit.IsOverload(resp.Err); is {
					overloads++
					return
				}
				t.Errorf("client %d: unexpected error %v", g, resp.Err)
				return
			}
			ok++
		}(g)
	}
	wg.Wait()
	if ok == 0 {
		t.Error("no request admitted")
	}
	t.Logf("admitted %d, shed %d of 32 burst requests", ok, overloads)
}
