package kvstore

import (
	"context"
	"errors"
	"fmt"
	"time"

	sdrad "repro"
	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/persist"
	"repro/internal/pku"
	"repro/internal/procmodel"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// Mode selects the resilience strategy of a Server.
type Mode uint8

// Server modes.
const (
	// ModeNative runs request handling unprotected: a triggered memory
	// bug crashes the process, which restarts (taking the full
	// state-dependent restart time during which the service is down).
	ModeNative Mode = iota + 1
	// ModeSDRaD runs request handling inside per-connection domains with
	// secure rewind and discard.
	ModeSDRaD
	// ModeSandbox runs request handling in a separate sandbox process
	// (conventional process isolation): faults are contained like SDRaD,
	// but every request pays two context switches plus IPC — the high
	// compartment-crossing cost §IV contrasts with MPK.
	ModeSandbox
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeSDRaD:
		return "sdrad"
	case ModeSandbox:
		return "sandbox"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// ErrUnavailable is the client-visible failure while the native server is
// restarting.
var ErrUnavailable = errors.New("kvstore: service unavailable (restarting)")

// ErrShardFailed is the client-visible failure after a durable shard's
// group commit failed. The failed batch's mutations were nacked but had
// already reached the in-memory cache, so the shard fail-stops: serving
// on (and in particular snapshotting) would leak unacknowledged writes
// into reads and into durable state. Recovery from disk yields exactly
// the acknowledged prefix.
var ErrShardFailed = errors.New("kvstore: durability failed; shard stopped serving")

// ErrDrained is the client-visible failure after a graceful drain
// completed: the shard flushed, snapshotted, and released its store, and
// by the drain contract no request admitted afterwards may execute (its
// ack could not be made durable).
var ErrDrained = errors.New("kvstore: drained; shard stopped accepting requests")

// ServerConfig configures a Server.
type ServerConfig struct {
	// Mode selects native vs SDRaD operation.
	Mode Mode
	// Workers is the number of per-connection domains in SDRaD mode
	// (default 4). Clients map to workers round-robin.
	Workers int
	// FirstWorkerUDI is the UDI of the first worker domain (default 10).
	FirstWorkerUDI core.UDI
	// MaliciousKind is the bug class malicious requests trigger (default
	// HeapOverflow).
	MaliciousKind fault.Kind
	// InterArrival is the virtual time between request arrivals, used to
	// model load during downtime windows (default 100µs ≈ 10k req/s).
	InterArrival time.Duration
	// Persist enables durable persistence (nil or an empty Dir keeps
	// today's memory-only behavior). See PersistConfig.
	Persist *PersistConfig
}

func (c *ServerConfig) fill() {
	if c.Mode == 0 {
		c.Mode = ModeSDRaD
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.FirstWorkerUDI == 0 {
		c.FirstWorkerUDI = 10
	}
	if c.MaliciousKind == 0 {
		c.MaliciousKind = fault.HeapOverflow
	}
	if c.InterArrival <= 0 {
		c.InterArrival = 100 * time.Microsecond
	}
}

// Response is the outcome of one request.
type Response struct {
	// OK reports application-level success (hit for GET, stored for SET,
	// found for DELETE).
	OK bool
	// Value is the GET result (nil on miss).
	Value []byte
	// Err is the client-visible failure, if any.
	Err error
	// Flags is the stored flags word for GET hits.
	Flags uint32
	// Latency is the virtual service time of the request.
	Latency time.Duration
	// Contained reports that a triggered memory bug was contained by a
	// domain rewind (SDRaD mode only).
	Contained bool
}

// Server is the memcached-like server. Create with NewServer. Not safe
// for concurrent use (the simulation is single-core).
type Server struct {
	sys     *core.System
	cache   *Cache
	cfg     ServerConfig
	workers []*sdrad.Domain
	scratch *alloc.Heap // native-mode parse buffers (key 0)
	// parseBuf is the reusable host-side staging buffer for the parse
	// scan (the server is single-threaded, so one buffer suffices).
	parseBuf []byte

	downUntil uint64 // virtual cycle until which the native server is down

	// Durability state (nil store = memory-only; see persist.go).
	store      persist.Store
	snapEvery  int
	pending    [][]byte // records staged by apply, flushed per batch
	replaying  bool     // recovery replay in progress: do not re-log
	sinceSnap  int      // committed batches since the last snapshot
	snapCount  int      // snapshots taken (or restored) this process
	persistErr error    // fatal group-commit failure: the shard fail-stopped
	snapErr    error    // last snapshot failure (degraded log-only operation)
	drained    bool     // graceful drain completed: reject all requests

	// stats
	requests   uint64
	violations uint64
	crashes    uint64
	dropped    uint64
	preempted  uint64
	// Batch-resolution accounting, fed by the root batch commit hook
	// (Domain.OnBatch).
	batchesCommitted uint64
	batchesDegraded  uint64
	callsReplayed    uint64
}

// NewServer builds a server over an existing system and cache.
func NewServer(sys *core.System, cache *Cache, cfg ServerConfig) (*Server, error) {
	cfg.fill()
	s := &Server{sys: sys, cache: cache, cfg: cfg}
	switch cfg.Mode {
	case ModeSDRaD:
		sup := sdrad.Attach(sys)
		for i := 0; i < cfg.Workers; i++ {
			udi := cfg.FirstWorkerUDI + core.UDI(i)
			if _, err := sys.InitDomain(udi, core.DomainConfig{
				HeapPages:  8,
				StackPages: 4,
			}); err != nil {
				return nil, fmt.Errorf("kvstore: worker %d: %w", i, err)
			}
			d, err := sup.DomainAt(int(udi))
			if err != nil {
				return nil, fmt.Errorf("kvstore: worker %d: %w", i, err)
			}
			d.OnBatch(s.observeBatch)
			s.workers = append(s.workers, d)
		}
	case ModeNative, ModeSandbox:
		h, err := alloc.New(sys.Mem(), pku.DefaultKey, alloc.Config{InitialPages: 8})
		if err != nil {
			return nil, fmt.Errorf("kvstore: scratch heap: %w", err)
		}
		s.scratch = h
	default:
		return nil, fmt.Errorf("kvstore: unknown mode %v", cfg.Mode)
	}
	if cfg.Persist != nil && cfg.Persist.Dir != "" {
		st, err := persist.OpenFile(cfg.Persist.Dir, persist.FileConfig{
			Fsync:   cfg.Persist.Fsync,
			Metrics: cfg.Persist.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("kvstore: open store: %w", err)
		}
		if err := s.AttachStore(st, cfg.Persist.SnapshotEvery); err != nil {
			if cerr := st.Close(); cerr != nil {
				return nil, fmt.Errorf("%w (and store close failed: %v)", err, cerr)
			}
			return nil, err
		}
	}
	return s, nil
}

// observeBatch is the Domain.OnBatch hook: it aggregates how worker
// batches resolved (clean commit vs degraded-to-serial).
func (s *Server) observeBatch(rep sdrad.BatchReport) {
	if rep.Committed {
		s.batchesCommitted++
	} else {
		s.batchesDegraded++
	}
	s.callsReplayed += uint64(rep.Replayed)
}

// Mode returns the server's mode.
func (s *Server) Mode() Mode { return s.cfg.Mode }

// Workers returns the live parser worker-domain count (0 outside SDRaD
// mode).
func (s *Server) Workers() int { return len(s.workers) }

// MaxResizeWorkers caps ResizeWorkers: each worker domain consumes one
// of the simulated machine's 16 protection keys, and the storage
// domain, the default key, and the root-protected key are spoken for.
const MaxResizeWorkers = 12

// ResizeWorkers grows or shrinks the parser worker-domain set to n
// (SDRaD mode only). Worker domains are pristine between requests —
// each request stages, parses, and discards — so the count is purely a
// concurrency/placement knob: a request's result is identical whichever
// worker parses it. Grown workers are fresh domains at the next UDIs;
// shrinking deinitializes the tail workers (releasing their protection
// keys and pages), so client→worker placement keeps its stable prefix.
func (s *Server) ResizeWorkers(n int) error {
	if s.cfg.Mode != ModeSDRaD {
		return fmt.Errorf("kvstore: resize workers: mode %v has no worker domains", s.cfg.Mode)
	}
	if n < 1 || n > MaxResizeWorkers {
		return fmt.Errorf("kvstore: resize workers: %d out of range [1, %d]", n, MaxResizeWorkers)
	}
	cur := len(s.workers)
	if n > cur {
		sup := sdrad.Attach(s.sys)
		for i := cur; i < n; i++ {
			udi := s.cfg.FirstWorkerUDI + core.UDI(i)
			if _, err := s.sys.InitDomain(udi, core.DomainConfig{
				HeapPages:  8,
				StackPages: 4,
			}); err != nil {
				return fmt.Errorf("kvstore: resize worker %d: %w", i, err)
			}
			d, err := sup.DomainAt(int(udi))
			if err != nil {
				return fmt.Errorf("kvstore: resize worker %d: %w", i, err)
			}
			d.OnBatch(s.observeBatch)
			s.workers = append(s.workers, d)
		}
	}
	for i := cur - 1; i >= n; i-- {
		if err := s.workers[i].Close(); err != nil {
			return fmt.Errorf("kvstore: retire worker %d: %w", i, err)
		}
		s.workers = s.workers[:i]
	}
	s.cfg.Workers = n
	return nil
}

// Cache returns the underlying cache.
func (s *Server) Cache() *Cache { return s.cache }

// CacheStats returns the cache's counters (StatsSource).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// CacheBytes returns the cache's stored bytes (StatsSource).
func (s *Server) CacheBytes() uint64 { return s.cache.Bytes() }

// CacheItems returns the cache's item count (StatsSource).
func (s *Server) CacheItems() int { return s.cache.Items() }

// ServerStats reports server accounting.
type ServerStats struct {
	Requests uint64
	// Violations is the number of contained memory-safety events (SDRaD).
	Violations uint64
	// Crashes is the number of full-process crashes (native).
	Crashes uint64
	// Dropped is the number of requests rejected during restart downtime
	// or refused by a fail-stopped durable shard (ErrShardFailed).
	Dropped uint64
	// Preempted is the number of requests cancelled by their context:
	// the in-domain run exhausted its deadline-derived virtual-cycle
	// budget, or the context expired before the domain was entered.
	Preempted uint64
	// BatchesCommitted counts worker-domain batches whose optimistic
	// pass stood (one shared entry, one sweep); BatchesDegraded counts
	// batches a detection or application error pushed to serial replay;
	// CallsReplayed is the total serially re-derived calls. Fed by the
	// Domain.OnBatch commit hook.
	BatchesCommitted uint64
	BatchesDegraded  uint64
	CallsReplayed    uint64
}

// Stats returns a snapshot of server accounting.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests:         s.requests,
		Violations:       s.violations,
		Crashes:          s.crashes,
		Dropped:          s.dropped,
		Preempted:        s.preempted,
		BatchesCommitted: s.batchesCommitted,
		BatchesDegraded:  s.batchesDegraded,
		CallsReplayed:    s.callsReplayed,
	}
}

// payload renders the request in a memcached-text-like shape; this is the
// untrusted byte string the handler parses.
func payload(req workload.Request) []byte {
	switch req.Op {
	case workload.OpSet:
		head := fmt.Sprintf("set %s 0 0 %d\r\n", req.Key, len(req.Value))
		out := make([]byte, 0, len(head)+len(req.Value)+2)
		out = append(out, head...)
		out = append(out, req.Value...)
		out = append(out, '\r', '\n')
		return out
	case workload.OpDelete:
		return []byte(fmt.Sprintf("delete %s\r\n", req.Key))
	default:
		return []byte(fmt.Sprintf("get %s\r\n", req.Key))
	}
}

// Handle serves one request from clientID. It is HandleContext with a
// background context.
func (s *Server) Handle(clientID int, req workload.Request) Response {
	return s.HandleContext(context.Background(), clientID, req)
}

// HandleContext serves one request from clientID. The virtual clock
// advances by the request's full service time (network, parsing, cache
// access, and — on faults — recovery). In SDRaD mode a ctx deadline
// bounds the in-domain run with a virtual-cycle budget: a request that
// exhausts it is rewound and answered with a *core.BudgetError.
func (s *Server) HandleContext(ctx context.Context, clientID int, req workload.Request) Response {
	if s.drained {
		s.requests++
		s.dropped++
		return Response{Err: ErrDrained}
	}
	if s.persistErr != nil {
		s.requests++
		s.dropped++
		return s.failStopResponse()
	}
	s.requests++
	clk := s.sys.Clock()
	cost := clk.Model()
	clk.AdvanceTime(s.cfg.InterArrival) // arrival spacing

	// Native server down: drop the request (client-visible error).
	if s.cfg.Mode == ModeNative && clk.Cycles() < s.downUntil {
		s.dropped++
		return Response{Err: ErrUnavailable, Latency: 0}
	}

	start := clk.Cycles()
	// Network receive + send round trip.
	clk.Advance(2 * cost.Syscall)

	raw := payload(req)
	var resp Response
	var err error
	switch s.cfg.Mode {
	case ModeSDRaD:
		resp, err = s.handleSDRaD(ctx, clientID, req, raw)
	case ModeSandbox:
		resp, err = s.handleSandbox(req, raw)
	default:
		resp, err = s.handleNative(req, raw)
	}
	if err != nil {
		resp.Err = err
	}
	// Serial requests are batches of one: the group commit degenerates
	// to one append. Ack-after-commit: a failed commit fails the request
	// and fail-stops the shard (see flushWAL).
	if ferr := s.flushWAL(); ferr != nil {
		resp.OK = false
		resp.Err = ferr
	}
	resp.Latency = vclock.CyclesToDuration(clk.Cycles()-start, cost.CPUHz)
	return resp
}

// handleSDRaD parses the request inside the client's worker domain via
// the Runner API, then applies the operation to the protected cache from
// the trusted side.
func (s *Server) handleSDRaD(ctx context.Context, clientID int, req workload.Request, raw []byte) (Response, error) {
	d := s.workers[clientID%len(s.workers)]
	verr := d.Do(ctx, s.parseFn(req, raw))
	return s.finishSDRaD(d, req, verr)
}

// parseFn builds the in-domain half of one request: stage the untrusted
// bytes into the domain, parse them there, trigger the injected bug on
// malicious payloads. Shared by the serial and batched paths.
func (s *Server) parseFn(req workload.Request, raw []byte) func(*sdrad.Ctx) error {
	return func(c *sdrad.Ctx) error {
		buf := c.MustAlloc(len(raw))
		c.MustStore(buf, raw)
		parseInDomain(c, buf, s.stage(len(raw)))
		if req.Malicious {
			fault.Inject(c, s.cfg.MaliciousKind, 0)
		}
		c.MustFree(buf)
		return nil
	}
}

// finishSDRaD classifies the parse outcome and, for clean requests,
// applies the operation to the protected cache and stages the response
// into the worker domain.
func (s *Server) finishSDRaD(d *sdrad.Domain, req workload.Request, verr error) (Response, error) {
	if v, ok := core.IsViolation(verr); ok {
		// Contained: the worker domain was rewound and discarded; the
		// malicious client's connection is dropped, everyone else is
		// unaffected.
		s.violations++
		return Response{Err: v, Contained: true}, nil
	}
	if b, ok := core.IsBudget(verr); ok {
		// Preempted: the run blew its deadline-derived cycle budget and
		// was rewound; the slow request fails, the cache is untouched.
		s.preempted++
		return Response{Err: b}, nil
	}
	if errors.Is(verr, context.DeadlineExceeded) || errors.Is(verr, context.Canceled) {
		// The deadline passed (or the caller cancelled) before the worker
		// domain was ever entered — e.g. the request sat queued behind a
		// busy shard. Same client-visible outcome as a mid-run preemption.
		s.preempted++
		return Response{Err: verr}, nil
	}
	if verr != nil {
		return Response{}, verr
	}
	resp, err := s.apply(req)
	if err != nil {
		return resp, err
	}
	// Response staging: the connection's output buffer belongs to the
	// worker domain, so a GET hit is copied into domain memory before the
	// send. This cross-boundary copy exists only in SDRaD mode and is the
	// dominant component of the paper's 2–4% overhead.
	if req.Op == workload.OpGet && resp.OK && len(resp.Value) > 0 {
		out, aerr := d.Alloc(len(resp.Value) + 32)
		if aerr != nil {
			return resp, fmt.Errorf("kvstore: response staging: %w", aerr)
		}
		if cerr := d.Write(out, resp.Value); cerr != nil {
			return resp, fmt.Errorf("kvstore: response staging: %w", cerr)
		}
		if ferr := d.Free(out); ferr != nil {
			return resp, fmt.Errorf("kvstore: response staging: %w", ferr)
		}
	}
	return resp, nil
}

// BatchRequest is one request of a server batch: the submitting client,
// the request, and its own context (whose deadline maps to that
// request's virtual-cycle budget). A nil Ctx means no deadline.
type BatchRequest struct {
	Ctx      context.Context
	ClientID int
	Req      workload.Request
}

// HandleBatch serves a batch of pipelined requests as one unit — the
// submission-queue fast path. In SDRaD mode the batch pays one network
// round trip (the requests arrive coalesced, io_uring style) and groups
// requests per worker domain so each group shares one domain
// Enter/Exit and one integrity sweep (Domain.DoBatchItems; a faulting
// group transparently re-derives outcomes serially, so per-request
// results match serial HandleContext). Cache operations are applied in
// arrival order after the parses, preserving the serial store
// semantics. Native and sandbox modes fall back to per-request
// handling.
func (s *Server) HandleBatch(batch []BatchRequest) []Response {
	out := make([]Response, len(batch))
	if len(batch) == 0 {
		return out
	}
	if s.drained {
		s.requests += uint64(len(batch))
		s.dropped += uint64(len(batch))
		for i := range out {
			out[i] = Response{Err: ErrDrained}
		}
		return out
	}
	if s.persistErr != nil {
		s.requests += uint64(len(batch))
		s.dropped += uint64(len(batch))
		for i := range out {
			out[i] = s.failStopResponse()
		}
		return out
	}
	if s.cfg.Mode != ModeSDRaD || len(batch) == 1 {
		for i, r := range batch {
			out[i] = s.HandleContext(batchCtx(r.Ctx), r.ClientID, r.Req)
		}
		return out
	}
	clk := s.sys.Clock()
	cost := clk.Model()
	s.requests += uint64(len(batch))
	clk.AdvanceTime(time.Duration(len(batch)) * s.cfg.InterArrival) // arrival spacing
	start := clk.Cycles()
	clk.Advance(2 * cost.Syscall) // one pipelined receive + send for the batch

	// Partition by worker domain (stable): every group shares one entry.
	verrs := make([]error, len(batch))
	groups := make([][]int, len(s.workers))
	for i, r := range batch {
		w := r.ClientID % len(s.workers)
		groups[w] = append(groups[w], i)
	}
	for w, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		items := make([]sdrad.BatchItem, len(idxs))
		for k, i := range idxs {
			items[k] = sdrad.BatchItem{
				Ctx: batchCtx(batch[i].Ctx),
				Fn:  s.parseFn(batch[i].Req, payload(batch[i].Req)),
			}
		}
		for k, err := range s.workers[w].DoBatchItems(items) {
			verrs[idxs[k]] = err
		}
	}

	// Apply to the protected cache in arrival order, remembering which
	// requests staged WAL records.
	staged := make([]bool, len(batch))
	for i, r := range batch {
		d := s.workers[r.ClientID%len(s.workers)]
		before := len(s.pending)
		resp, err := s.finishSDRaD(d, r.Req, verrs[i])
		if err != nil {
			resp.Err = err
		}
		staged[i] = len(s.pending) > before
		resp.Latency = vclock.CyclesToDuration(clk.Cycles()-start, cost.CPUHz)
		out[i] = resp
	}
	// The group commit: every mutation the batch acknowledged goes out
	// as ONE append (at most one fsync). Requests the sweep rewound
	// never staged records — the rewind logically aborted their writes.
	// On a failed commit the acknowledgement is withdrawn from exactly
	// the requests whose records were lost, and the shard fail-stops
	// (flushWAL set persistErr): the nacked mutations are still in the
	// in-memory cache, so serving on would expose them to reads and a
	// later snapshot would make them durable.
	if ferr := s.flushWAL(); ferr != nil {
		for i := range out {
			if staged[i] {
				out[i].OK = false
				out[i].Err = ferr
			}
		}
	}
	return out
}

func batchCtx(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// handleNative parses the request in unprotected memory; a triggered bug
// crashes the whole process.
func (s *Server) handleNative(req workload.Request, raw []byte) (Response, error) {
	buf, err := s.scratch.Alloc(len(raw))
	if err != nil {
		return Response{}, fmt.Errorf("kvstore: scratch alloc: %w", err)
	}
	m := s.sys.Mem()
	if err := m.StoreBytes(pku.PKRUAllowAll, buf, raw); err != nil {
		return Response{}, fmt.Errorf("kvstore: scratch store: %w", err)
	}
	parseNative(m, buf, s.stage(len(raw)))
	if req.Malicious {
		return s.crash()
	}
	if err := s.scratch.Free(buf); err != nil {
		return Response{}, fmt.Errorf("kvstore: scratch free: %w", err)
	}
	return s.apply(req)
}

// handleSandbox parses in a separate sandbox process: the request is
// shipped over IPC (context switch in), parsed, and the result shipped
// back (context switch out). A triggered bug kills only the sandbox
// child, which is re-forked — service-visible impact is one errored
// request plus the fork cost, not a full restart.
func (s *Server) handleSandbox(req workload.Request, raw []byte) (Response, error) {
	clk := s.sys.Clock()
	cost := clk.Model()
	// IPC round trip into and out of the sandbox process.
	clk.Advance(2*cost.ContextSwitch + 2*cost.Syscall + cost.MemPerByte*uint64(len(raw)))

	buf, err := s.scratch.Alloc(len(raw))
	if err != nil {
		return Response{}, fmt.Errorf("kvstore: sandbox alloc: %w", err)
	}
	m := s.sys.Mem()
	if err := m.StoreBytes(pku.PKRUAllowAll, buf, raw); err != nil {
		return Response{}, fmt.Errorf("kvstore: sandbox store: %w", err)
	}
	parseNative(m, buf, s.stage(len(raw)))
	if err := s.scratch.Free(buf); err != nil {
		return Response{}, fmt.Errorf("kvstore: sandbox free: %w", err)
	}
	if req.Malicious {
		// The sandbox child dies; re-fork it. Contained, but expensive.
		s.violations++
		clk.Advance(cost.ForkExec)
		return Response{Err: fmt.Errorf("kvstore: sandbox worker killed"), Contained: true}, nil
	}
	return s.apply(req)
}

// crash models the native fault path: the process dies and restarts,
// which takes the full state-dependent restart time; requests arriving in
// the window are dropped.
func (s *Server) crash() (Response, error) {
	s.crashes++
	clk := s.sys.Clock()
	restart := procmodel.ProcessRestart{Cost: clk.Model()}.RecoveryTime(s.cache.Bytes())
	s.downUntil = clk.Cycles() + vclock.DurationToCycles(restart, clk.Model().CPUHz)
	// Reset the scratch heap: the dying process loses its transient
	// state (the cache state is reloaded during the restart window).
	if err := s.scratch.ResetNoZero(); err != nil {
		return Response{}, err
	}
	return Response{Err: fmt.Errorf("kvstore: process crashed (restart %v): %w",
		restart, ErrUnavailable)}, nil
}

// apply executes the parsed operation against the protected cache.
func (s *Server) apply(req workload.Request) (Response, error) {
	switch req.Op {
	case workload.OpGet:
		val, hit, err := s.cache.Get(req.Key)
		if err != nil {
			return Response{}, err
		}
		return Response{OK: hit, Value: val, Flags: s.cache.Flags(req.Key)}, nil
	case workload.OpSet:
		if err := s.cache.SetItem(req.Key, req.Value, req.TTL, req.Flags); err != nil {
			return Response{}, err
		}
		s.stageSet(req.Key, req.Flags, req.Value)
		return Response{OK: true}, nil
	case workload.OpDelete:
		found, err := s.cache.Delete(req.Key)
		if err != nil {
			return Response{}, err
		}
		if found {
			s.stageDelete(req.Key)
		}
		return Response{OK: found}, nil
	default:
		return Response{}, fmt.Errorf("kvstore: unknown op %v", req.Op)
	}
}

// stage returns the server's reusable n-byte parse staging buffer.
func (s *Server) stage(n int) []byte {
	if cap(s.parseBuf) < n {
		s.parseBuf = make([]byte, n)
	}
	return s.parseBuf[:n]
}

// parseInDomain models request parsing inside a domain: a linear scan of
// the buffer (token split + length validation), costed through real
// simulated loads. tmp is host-side staging for the scan.
func parseInDomain(c *core.DomainCtx, buf mem.Addr, tmp []byte) {
	c.MustLoad(buf, tmp)
	scan(tmp)
}

// parseNative is the same parse against unprotected memory.
func parseNative(m *mem.Memory, buf mem.Addr, tmp []byte) {
	// The native server runs with full rights.
	if err := m.LoadBytes(pku.PKRUAllowAll, buf, tmp); err != nil {
		return
	}
	scan(tmp)
}

// scan is the shared token walk (the Go-side compute is identical in both
// modes; the simulated-memory traffic above is what differs).
func scan(b []byte) int {
	tokens := 0
	inTok := false
	for _, ch := range b {
		sep := ch == ' ' || ch == '\r' || ch == '\n'
		if !sep && !inTok {
			tokens++
		}
		inTok = !sep
	}
	return tokens
}

// Warmup populates the cache with items totalling approximately
// stateBytes, using valueSize-byte values. It bypasses request handling
// (bulk load), mirroring a pre-experiment database load.
func Warmup(c *Cache, stateBytes uint64, valueSize int) (int, error) {
	if valueSize <= 0 {
		valueSize = 4096
	}
	n := 0
	val := make([]byte, valueSize)
	for c.Bytes()+uint64(valueSize) <= stateBytes && c.Bytes()+uint64(valueSize) <= c.Capacity() {
		if err := c.Set(workload.Key(n), val); err != nil {
			return n, fmt.Errorf("kvstore: warmup item %d: %w", n, err)
		}
		n++
	}
	return n, nil
}
