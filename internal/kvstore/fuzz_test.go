package kvstore

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"repro/internal/attackgen"
	"repro/internal/core"
	"repro/internal/workload"
)

// FuzzReadCommand checks the protocol parser never panics and that every
// accepted command is structurally sound.
func FuzzReadCommand(f *testing.F) {
	seeds := []string{
		"get k\r\n",
		"gets k\r\n",
		"set k 0 0 5\r\nhello\r\n",
		"set k 0 0 0\r\n\r\n",
		"delete k\r\n",
		"stats\r\n",
		"quit\r\n",
		"set k 0 0 1048577\r\n",
		"set k 0 0 -3\r\nxx\r\n",
		"\r\n",
		"get\r\n",
		"\x00\xff\r\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		cmd, err := ReadCommand(bufio.NewReader(strings.NewReader(in)))
		if err != nil {
			return
		}
		if cmd.Stats || cmd.Quit {
			return
		}
		if cmd.Req.Key == "" {
			t.Errorf("accepted command with empty key: %q", in)
		}
		if len(cmd.Req.Value) > MaxValueSize {
			t.Errorf("accepted oversized value: %d", len(cmd.Req.Value))
		}
	})
}

// FuzzHandleSDRaD drives arbitrary wire bytes through the full SDRaD
// request path — protocol parse, domain-isolated handling, attack
// injection on marked values — and asserts the supervisor's contract:
// a crafted request may be rejected or contained (a detection), but the
// supervisor must never panic and malicious requests must never reach
// the cache.
func FuzzHandleSDRaD(f *testing.F) {
	seeds := [][]byte{
		[]byte("get key-1\r\n"),
		[]byte("set key-1 0 0 5\r\nhello\r\n"),
		[]byte("set key-1 7 30 4\r\nwxyz\r\n"),
		[]byte("delete key-1\r\n"),
		[]byte("set x 0 0 9\r\n" + AttackMarker + "\r\n"),
		[]byte("set x 0 0 12\r\n" + AttackMarker + "pad\r\n"),
		[]byte("set k 0 0 1048577\r\n"),
		[]byte("\x00\xff\r\n"),
	}
	// Deterministic malformed corpus from the attack generator.
	seeds = append(seeds, attackgen.MalformedKVCorpus(1, 16)...)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		cmd, err := ReadCommand(bufio.NewReader(bytes.NewReader(in)))
		if err != nil {
			// Parser rejection is the benign failure mode; reaching here
			// without a panic is the assertion.
			return
		}
		if cmd.Stats || cmd.Quit {
			return
		}
		sys := core.NewSystem(core.DefaultConfig())
		cache, err := NewCache(sys, 1, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(sys, cache, ServerConfig{Mode: ModeSDRaD, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		req := cmd.Req
		if bytes.HasPrefix(req.Value, []byte(AttackMarker)) {
			req.Malicious = true
		}
		resp := srv.Handle(0, req)
		if req.Malicious {
			if !resp.Contained {
				t.Errorf("malicious request not contained: %+v", resp)
			}
			if sys.Counters().Total() == 0 {
				t.Error("contained violation recorded no detection")
			}
			if _, hit, _ := cache.Get(req.Key); hit {
				t.Error("malicious SET reached the cache")
			}
		} else if resp.Contained {
			t.Errorf("benign request %q reported contained: %+v", in, resp)
		}
		// The supervisor must stay serviceable after any single request:
		// a benign probe on another connection goes through cleanly.
		probe := srv.Handle(1, workload.Request{Op: workload.OpGet, Key: "probe"})
		if probe.Err != nil || probe.Contained {
			t.Errorf("server unserviceable after %q: %+v", in, probe)
		}
	})
}
