package kvstore

import (
	"bufio"
	"strings"
	"testing"
)

// FuzzReadCommand checks the protocol parser never panics and that every
// accepted command is structurally sound.
func FuzzReadCommand(f *testing.F) {
	seeds := []string{
		"get k\r\n",
		"gets k\r\n",
		"set k 0 0 5\r\nhello\r\n",
		"set k 0 0 0\r\n\r\n",
		"delete k\r\n",
		"stats\r\n",
		"quit\r\n",
		"set k 0 0 1048577\r\n",
		"set k 0 0 -3\r\nxx\r\n",
		"\r\n",
		"get\r\n",
		"\x00\xff\r\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		cmd, err := ReadCommand(bufio.NewReader(strings.NewReader(in)))
		if err != nil {
			return
		}
		if cmd.Stats || cmd.Quit {
			return
		}
		if cmd.Req.Key == "" {
			t.Errorf("accepted command with empty key: %q", in)
		}
		if len(cmd.Req.Value) > MaxValueSize {
			t.Errorf("accepted oversized value: %d", len(cmd.Req.Value))
		}
	})
}
