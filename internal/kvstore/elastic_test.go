package kvstore

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/workload"
)

// TestResizeDurableAckedWrites is the durability regression for elastic
// shrink: while concurrent clients SET unique keys through the batched
// submission layer and a resizer cycles the parser worker-domain count,
// a graceful drain fires mid-run. Every batch an acked write rode in
// WAL-commits before its queue closes, so after reopening the stores
// from disk exactly the acked keys are present — none lost, and no
// shed (unacked) write surviving.
func TestResizeDurableAckedWrites(t *testing.T) {
	dir := t.TempDir()
	cfg := ServerConfig{
		Mode:    ModeSDRaD,
		Persist: &PersistConfig{Dir: dir, Fsync: false, SnapshotEvery: 8},
	}
	p, err := NewPool(core.DefaultConfig(), cfg, 2, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewBatchedNetServerPool(p, nil, 256, 8)
	if err != nil {
		t.Fatal(err)
	}

	const producers, per = 6, 60
	type kv struct{ key, val string }
	var mu sync.Mutex
	acked := make(map[string]string)
	shed := make(map[string]bool)

	stopResize := make(chan struct{})
	var resizeWG sync.WaitGroup
	resizeWG.Add(1)
	go func() {
		defer resizeWG.Done()
		sizes := []int{4, 1, 6, 2, 3}
		for i := 0; ; i++ {
			select {
			case <-stopResize:
				return
			default:
			}
			if rerr := srv.ResizeWorkers(sizes[i%len(sizes)]); rerr != nil {
				if _, ok := lifecycle.IsLifecycle(rerr); !ok {
					t.Errorf("ResizeWorkers(%d): %v", sizes[i%len(sizes)], rerr)
				}
			}
		}
	}()

	var submitted int64
	var subMu sync.Mutex
	var drainOnce sync.Once
	drainDone := make(chan struct{})
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w := kv{key: fmt.Sprintf("k-%d-%03d", pr, i), val: fmt.Sprintf("v-%d-%03d", pr, i)}
				subMu.Lock()
				submitted++
				fireDrain := submitted == producers*per/2
				subMu.Unlock()
				if fireDrain {
					// Mid-run graceful drain: queues flush (acked batches
					// WAL-commit), then the shards take a final snapshot
					// and release the stores.
					go drainOnce.Do(func() {
						defer close(drainDone)
						if derr := srv.Drain(); derr != nil {
							t.Errorf("Drain: %v", derr)
						}
					})
				}
				resp := srv.handle(context.Background(), pr, workload.Request{
					Op: workload.OpSet, Key: w.key, Value: []byte(w.val),
				})
				mu.Lock()
				if resp.OK && resp.Err == nil {
					acked[w.key] = w.val
				} else {
					shed[w.key] = true
				}
				mu.Unlock()
			}
		}(pr)
	}
	wg.Wait()
	close(stopResize)
	resizeWG.Wait()
	<-drainDone
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(acked) == 0 || len(shed) == 0 {
		t.Fatalf("degenerate mix: acked=%d shed=%d (want both non-zero)", len(acked), len(shed))
	}

	// Reopen the per-shard stores and check exact ack alignment.
	p2, err := NewPool(core.DefaultConfig(), cfg, 2, 16<<20)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if cerr := p2.Close(); cerr != nil {
			t.Errorf("close reopened pool: %v", cerr)
		}
	}()
	for key, val := range acked {
		resp := p2.Handle(0, workload.Request{Op: workload.OpGet, Key: key})
		if !resp.OK || resp.Err != nil {
			t.Fatalf("acked key %q lost after recovery: %+v", key, resp)
		}
		if !bytes.Equal(resp.Value, []byte(val)) {
			t.Fatalf("acked key %q = %q after recovery, want %q", key, resp.Value, val)
		}
	}
	for key := range shed {
		if resp := p2.Handle(0, workload.Request{Op: workload.OpGet, Key: key}); resp.OK && resp.Err == nil {
			t.Fatalf("shed key %q survived recovery with value %q", key, resp.Value)
		}
	}
}
