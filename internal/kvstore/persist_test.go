package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/persist"
	"repro/internal/workload"
)

// newDurableServer builds a full SDRaD server persisting into dir.
func newDurableServer(t *testing.T, dir string, snapEvery int, pm *metrics.Persist) *Server {
	t.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := NewCache(sys, 1, 8<<20)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	srv, err := NewServer(sys, cache, ServerConfig{
		Mode:         ModeSDRaD,
		Workers:      2,
		InterArrival: time.Nanosecond,
		Persist:      &PersistConfig{Dir: dir, Fsync: true, SnapshotEvery: snapEvery, Metrics: pm},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return srv
}

func setReq(key, val string) workload.Request {
	return workload.Request{Op: workload.OpSet, Key: key, Value: []byte(val)}
}

func dumpOrFatal(t *testing.T, c *Cache) map[string][]byte {
	t.Helper()
	m, err := c.Dump()
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	return m
}

func requireSameState(t *testing.T, want, got map[string][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("state size mismatch: want %d items, got %d", len(want), len(got))
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("key %q lost", k)
		}
		if !bytes.Equal(v, gv) {
			t.Fatalf("key %q = %q, want %q", k, gv, v)
		}
	}
}

func TestServerPersistRoundTripWALOnly(t *testing.T) {
	dir := t.TempDir()
	srv := newDurableServer(t, dir, 0, nil)
	for i := 0; i < 40; i++ {
		if resp := srv.Handle(i, setReq(fmt.Sprintf("k-%02d", i), fmt.Sprintf("v-%02d", i))); !resp.OK || resp.Err != nil {
			t.Fatalf("set %d: %+v", i, resp)
		}
	}
	for i := 0; i < 40; i += 4 {
		if resp := srv.Handle(i, workload.Request{Op: workload.OpDelete, Key: fmt.Sprintf("k-%02d", i)}); !resp.OK || resp.Err != nil {
			t.Fatalf("delete %d: %+v", i, resp)
		}
	}
	want := dumpOrFatal(t, srv.Cache())
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	srv2 := newDurableServer(t, dir, 0, nil)
	defer func() {
		if err := srv2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	requireSameState(t, want, dumpOrFatal(t, srv2.Cache()))
	// The recovered server keeps serving: reads hit, writes persist.
	if resp := srv2.Handle(1, workload.Request{Op: workload.OpGet, Key: "k-01"}); !resp.OK || string(resp.Value) != "v-01" {
		t.Fatalf("recovered get: %+v", resp)
	}
}

func TestServerPersistSnapshotCadence(t *testing.T) {
	dir := t.TempDir()
	var pm metrics.Persist
	srv := newDurableServer(t, dir, 2, &pm)
	// Drive batches so the every-2-batches cadence fires repeatedly, with
	// interleaved overwrites and deletes to exercise incremental deltas.
	for round := 0; round < 6; round++ {
		batch := make([]BatchRequest, 8)
		for i := range batch {
			key := fmt.Sprintf("k-%02d", (round*3+i)%10)
			batch[i] = BatchRequest{ClientID: i, Req: setReq(key, fmt.Sprintf("r%d-%d", round, i))}
		}
		batch[7] = BatchRequest{ClientID: 7, Req: workload.Request{Op: workload.OpDelete, Key: "k-00"}}
		for i, resp := range srv.HandleBatch(batch) {
			if resp.Err != nil {
				t.Fatalf("round %d req %d: %v", round, i, resp.Err)
			}
		}
	}
	snaps := pm.Snapshot()
	if snaps.Snapshots < 2 {
		t.Fatalf("cadence never fired: %+v", snaps)
	}
	// One group commit per batch, not per op: 6 batches, 6 appends.
	if snaps.Appends != 6 {
		t.Fatalf("appends = %d, want 6 (one per batch)", snaps.Appends)
	}
	if snaps.Fsyncs != snaps.Appends {
		t.Fatalf("fsync-on store: fsyncs %d != appends %d", snaps.Fsyncs, snaps.Appends)
	}
	want := dumpOrFatal(t, srv.Cache())
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	srv2 := newDurableServer(t, dir, 2, nil)
	defer func() {
		if err := srv2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	requireSameState(t, want, dumpOrFatal(t, srv2.Cache()))
}

func TestViolationRewindAbortsWALRecords(t *testing.T) {
	dir := t.TempDir()
	srv := newDurableServer(t, dir, 0, nil)
	batch := []BatchRequest{
		{ClientID: 0, Req: setReq("good-1", "a")},
		{ClientID: 0, Req: workload.Request{Op: workload.OpSet, Key: "evil", Value: []byte("x"), Malicious: true}},
		{ClientID: 0, Req: setReq("good-2", "b")},
		{ClientID: 1, Req: setReq("good-3", "c")},
	}
	out := srv.HandleBatch(batch)
	if !out[1].Contained {
		t.Fatalf("malicious request not contained: %+v", out[1])
	}
	for _, i := range []int{0, 2, 3} {
		if !out[i].OK || out[i].Err != nil {
			t.Fatalf("clean request %d: %+v", i, out[i])
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	srv2 := newDurableServer(t, dir, 0, nil)
	defer func() {
		if err := srv2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	got := dumpOrFatal(t, srv2.Cache())
	if _, ok := got["evil"]; ok {
		t.Fatal("rewound request's write survived recovery")
	}
	for _, k := range []string{"good-1", "good-2", "good-3"} {
		if _, ok := got[k]; !ok {
			t.Fatalf("acknowledged key %q lost", k)
		}
	}
	// The commit hook observed the degraded batch.
	if st := srv.Stats(); st.BatchesDegraded == 0 {
		t.Fatalf("batch commit hook saw no degraded batch: %+v", st)
	}
}

func TestKilledCommitWithdrawsAcks(t *testing.T) {
	dir := t.TempDir()
	srv := newDurableServer(t, dir, 0, nil)
	if resp := srv.Handle(0, setReq("durable", "yes")); !resp.OK {
		t.Fatalf("set: %+v", resp)
	}
	fs, ok := srv.Store().(*persist.FileStore)
	if !ok {
		t.Fatalf("store is %T", srv.Store())
	}
	fs.KillNextAppend(0.4)
	batch := []BatchRequest{
		{ClientID: 0, Req: setReq("lost-1", "a")},
		{ClientID: 1, Req: setReq("lost-2", "b")},
		{ClientID: 0, Req: workload.Request{Op: workload.OpGet, Key: "durable"}},
	}
	out := srv.HandleBatch(batch)
	// The commit died: mutation acks are withdrawn, the pure read stands.
	if out[0].Err == nil || out[0].OK {
		t.Fatalf("killed commit still acked: %+v", out[0])
	}
	if out[1].Err == nil || out[1].OK {
		t.Fatalf("killed commit still acked: %+v", out[1])
	}
	if !out[2].OK || out[2].Err != nil {
		t.Fatalf("read caught in commit failure: %+v", out[2])
	}

	srv2 := newDurableServer(t, dir, 0, nil)
	defer func() {
		if err := srv2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	got := dumpOrFatal(t, srv2.Cache())
	if _, ok := got["lost-1"]; ok {
		t.Fatal("unacknowledged write survived the torn commit")
	}
	if v, ok := got["durable"]; !ok || string(v) != "yes" {
		t.Fatalf("committed write lost: %q %v", v, ok)
	}
}

func TestFailedCommitFailStopsShard(t *testing.T) {
	dir := t.TempDir()
	srv := newDurableServer(t, dir, 1, nil) // snapshot every batch: maximal pressure
	if resp := srv.Handle(0, setReq("durable", "yes")); !resp.OK {
		t.Fatalf("set: %+v", resp)
	}
	fs, ok := srv.Store().(*persist.FileStore)
	if !ok {
		t.Fatalf("store is %T", srv.Store())
	}
	fs.KillNextAppend(0.4)
	if resp := srv.Handle(0, setReq("nacked", "x")); resp.OK || resp.Err == nil {
		t.Fatalf("killed commit still acked: %+v", resp)
	}
	// The shard fail-stopped: the nacked mutation is still in the
	// in-memory cache, so every later request — including the reads that
	// would observe it and the batches whose snapshot cadence would make
	// it durable — is refused.
	if resp := srv.Handle(0, setReq("after", "x")); !errors.Is(resp.Err, ErrShardFailed) {
		t.Fatalf("post-failure set err = %v, want ErrShardFailed", resp.Err)
	}
	if resp := srv.Handle(0, workload.Request{Op: workload.OpGet, Key: "nacked"}); !errors.Is(resp.Err, ErrShardFailed) {
		t.Fatalf("post-failure get err = %v, want ErrShardFailed", resp.Err)
	}
	out := srv.HandleBatch([]BatchRequest{
		{ClientID: 0, Req: setReq("b-1", "x")},
		{ClientID: 1, Req: setReq("b-2", "y")},
	})
	for i, resp := range out {
		if !errors.Is(resp.Err, ErrShardFailed) {
			t.Fatalf("post-failure batch req %d err = %v, want ErrShardFailed", i, resp.Err)
		}
	}
	if st := srv.Stats(); st.Dropped < 4 {
		t.Fatalf("refused requests not accounted as dropped: %+v", st)
	}

	// Recovery yields exactly the acknowledged prefix: nothing the
	// fail-stopped shard refused (or nacked) became durable.
	srv2 := newDurableServer(t, dir, 1, nil)
	defer func() {
		if err := srv2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	got := dumpOrFatal(t, srv2.Cache())
	for _, k := range []string{"nacked", "after", "b-1", "b-2"} {
		if _, ok := got[k]; ok {
			t.Fatalf("unacknowledged key %q survived the fail-stop", k)
		}
	}
	if v, ok := got["durable"]; !ok || string(v) != "yes" {
		t.Fatalf("committed write lost: %q %v", v, ok)
	}
}

// errInjectedSnap is the failure flakySnapStore injects.
var errInjectedSnap = errors.New("injected snapshot failure")

// flakySnapStore wraps a Store and fails its first N Snapshot calls,
// honoring the Store contract by retaining the rejected deltas for the
// eventual successful commit.
type flakySnapStore struct {
	persist.Store
	failures int
	held     []persist.SnapshotPage
	commits  int
}

func (f *flakySnapStore) Snapshot(meta []byte, delta []persist.SnapshotPage) error {
	if f.failures > 0 {
		f.failures--
		f.held = append(f.held, delta...)
		return errInjectedSnap
	}
	delta = append(f.held, delta...)
	f.held = nil
	f.commits++
	return f.Store.Snapshot(meta, delta)
}

func TestSnapshotFailureDegradesWithoutNacking(t *testing.T) {
	dir := t.TempDir()
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := NewCache(sys, 1, 8<<20)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	srv, err := NewServer(sys, cache, ServerConfig{
		Mode: ModeSDRaD, Workers: 2, InterArrival: time.Nanosecond,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	fs, err := persist.OpenFile(dir, persist.FileConfig{Fsync: true})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	flaky := &flakySnapStore{Store: fs, failures: 2}
	if err := srv.AttachStore(flaky, 2); err != nil {
		t.Fatalf("AttachStore: %v", err)
	}

	// Drive batches across the failing cadence points. Every mutation's
	// WAL record commits before the snapshot attempt, so every ack must
	// stand — a snapshot failure is degradation, not data loss.
	degraded := false
	for round := 0; round < 8; round++ {
		batch := make([]BatchRequest, 4)
		for i := range batch {
			batch[i] = BatchRequest{ClientID: i, Req: setReq(fmt.Sprintf("k-%d-%d", round, i), fmt.Sprintf("v-%d", round))}
		}
		for i, resp := range srv.HandleBatch(batch) {
			if !resp.OK || resp.Err != nil {
				t.Fatalf("round %d req %d nacked by snapshot failure: %+v", round, i, resp)
			}
		}
		if srv.SnapshotErr() != nil {
			degraded = true
		}
	}
	if !degraded {
		t.Fatal("injected snapshot failures never surfaced via SnapshotErr")
	}
	// The cadence retried past the injected failures and committed.
	if flaky.commits == 0 {
		t.Fatal("snapshot never recovered from the injected failures")
	}
	if srv.SnapshotErr() != nil {
		t.Fatalf("SnapshotErr still set after a successful snapshot: %v", srv.SnapshotErr())
	}

	want := dumpOrFatal(t, srv.Cache())
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	srv2 := newDurableServer(t, dir, 2, nil)
	defer func() {
		if err := srv2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	requireSameState(t, want, dumpOrFatal(t, srv2.Cache()))
}

func TestPersistTTLSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	srv := newDurableServer(t, dir, 0, nil)
	if resp := srv.Handle(0, workload.Request{Op: workload.OpSet, Key: "ttl", Value: []byte("v"), TTL: time.Hour}); !resp.OK {
		t.Fatalf("set: %+v", resp)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	srv2 := newDurableServer(t, dir, 0, nil)
	defer func() {
		if err := srv2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	el, ok := srv2.Cache().item["ttl"]
	if !ok {
		t.Fatal("ttl key lost")
	}
	if el.Value.(*entry).expireAt <= 0 {
		t.Fatal("absolute expiry lost in recovery")
	}
	if resp := srv2.Handle(0, workload.Request{Op: workload.OpGet, Key: "ttl"}); !resp.OK {
		t.Fatalf("get before expiry: %+v", resp)
	}
}

func TestPoolPersistsPerShard(t *testing.T) {
	dir := t.TempDir()
	cfg := ServerConfig{
		Mode: ModeSDRaD, Workers: 2, InterArrival: time.Nanosecond,
		Persist: &PersistConfig{Dir: dir, Fsync: true},
	}
	pool, err := NewPool(core.DefaultConfig(), cfg, 4, 32<<20)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	for i := 0; i < 50; i++ {
		if resp := pool.Handle(i, setReq(workload.Key(i), fmt.Sprintf("val-%d", i))); !resp.OK || resp.Err != nil {
			t.Fatalf("set %d: %+v", i, resp)
		}
	}
	var want []map[string][]byte
	for i := 0; i < pool.Workers(); i++ {
		want = append(want, dumpOrFatal(t, pool.Shard(i).Cache()))
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	pool2, err := NewPool(core.DefaultConfig(), cfg, 4, 32<<20)
	if err != nil {
		t.Fatalf("reopen pool: %v", err)
	}
	defer func() {
		if err := pool2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	for i := 0; i < pool2.Workers(); i++ {
		requireSameState(t, want[i], dumpOrFatal(t, pool2.Shard(i).Cache()))
	}
	for i := 0; i < 50; i++ {
		resp := pool2.Handle(i, workload.Request{Op: workload.OpGet, Key: workload.Key(i)})
		if !resp.OK || string(resp.Value) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("recovered get %d: %+v", i, resp)
		}
	}
}
