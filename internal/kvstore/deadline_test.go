package kvstore

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// newSlowServer builds an SDRaD server on a 1 MHz simulated core, so a
// large SET's in-domain parse exceeds a deadline-derived cycle budget.
func newSlowServer(t *testing.T) *Server {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Cost.CPUHz = 1_000_000
	sys := core.NewSystem(cfg)
	cache, err := NewCache(sys, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sys, cache, ServerConfig{Mode: ModeSDRaD})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestHandleContextDeadlinePreempts: the request deadline maps to a
// virtual-cycle budget bounding the in-domain run; a SET whose parse
// exceeds it is preempted and rewound, the cache stays untouched, and
// the preemption point is the same on every run.
func TestHandleContextDeadlinePreempts(t *testing.T) {
	req := workload.Request{Op: workload.OpSet, Key: "big", Value: bytes.Repeat([]byte("v"), 64<<10)}

	run := func() (Response, *Server) {
		srv := newSlowServer(t)
		ctx, cancel := context.WithTimeout(context.Background(), vclock.DeadlineQuantum/2)
		defer cancel()
		return srv.HandleContext(ctx, 0, req), srv
	}

	resp1, srv1 := run()
	b1, ok := core.IsBudget(resp1.Err)
	if !ok {
		t.Fatalf("err = %v, want *core.BudgetError", resp1.Err)
	}
	st := srv1.Stats()
	if st.Preempted != 1 || st.Violations != 0 {
		t.Errorf("stats = %+v, want 1 preemption and no violations", st)
	}
	if srv1.CacheItems() != 0 {
		t.Errorf("preempted SET reached the cache: %d items", srv1.CacheItems())
	}

	resp2, _ := run()
	b2, ok := core.IsBudget(resp2.Err)
	if !ok {
		t.Fatalf("second run err = %v, want *core.BudgetError", resp2.Err)
	}
	if b1.Used != b2.Used || b1.Budget != b2.Budget {
		t.Errorf("preemption point differs across runs: used %d/%d vs %d/%d",
			b1.Used, b1.Budget, b2.Used, b2.Budget)
	}

	// Without a deadline the same request succeeds.
	srv := newSlowServer(t)
	if resp := srv.HandleContext(context.Background(), 0, req); resp.Err != nil || !resp.OK {
		t.Fatalf("unbudgeted SET failed: ok=%v err=%v", resp.OK, resp.Err)
	}
}
