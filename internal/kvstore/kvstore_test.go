package kvstore

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/procmodel"
	"repro/internal/workload"
)

func newCache(t *testing.T, capacity uint64) (*Cache, *core.System) {
	t.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	c, err := NewCache(sys, 1, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return c, sys
}

func TestCacheSetGetDelete(t *testing.T) {
	c, _ := newCache(t, 1<<20)
	if err := c.Set("a", []byte("hello")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	v, hit, err := c.Get("a")
	if err != nil || !hit || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("Get = %q, %v, %v", v, hit, err)
	}
	if _, hit, _ := c.Get("missing"); hit {
		t.Error("phantom hit")
	}
	found, err := c.Delete("a")
	if err != nil || !found {
		t.Fatalf("Delete = %v, %v", found, err)
	}
	if _, hit, _ := c.Get("a"); hit {
		t.Error("deleted key still present")
	}
	if found, _ := c.Delete("a"); found {
		t.Error("double delete reported found")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheReplace(t *testing.T) {
	c, _ := newCache(t, 1<<20)
	_ = c.Set("k", []byte("old"))
	_ = c.Set("k", []byte("newer"))
	v, hit, _ := c.Get("k")
	if !hit || string(v) != "newer" {
		t.Errorf("replace failed: %q", v)
	}
	if c.Items() != 1 {
		t.Errorf("Items = %d", c.Items())
	}
	if c.Bytes() != 5 {
		t.Errorf("Bytes = %d, want 5", c.Bytes())
	}
}

func TestCacheEmptyValue(t *testing.T) {
	c, _ := newCache(t, 1<<20)
	if err := c.Set("empty", nil); err != nil {
		t.Fatalf("Set(nil): %v", err)
	}
	v, hit, err := c.Get("empty")
	if err != nil || !hit || len(v) != 0 {
		t.Errorf("Get = %q, %v, %v", v, hit, err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := newCache(t, 1024)
	v := make([]byte, 300)
	_ = c.Set("a", v)
	_ = c.Set("b", v)
	_ = c.Set("c", v)
	// Touch "a" so "b" is LRU.
	_, _, _ = c.Get("a")
	_ = c.Set("d", v) // evicts "b"
	if _, hit, _ := c.Get("b"); hit {
		t.Error("LRU item survived eviction")
	}
	if _, hit, _ := c.Get("a"); !hit {
		t.Error("recently-used item was evicted")
	}
	if c.Stats().Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestCacheLimits(t *testing.T) {
	c, _ := newCache(t, 1024)
	if err := c.Set("big", make([]byte, 2048)); !errors.Is(err, ErrCapacity) {
		t.Errorf("oversized set = %v, want ErrCapacity", err)
	}
	big, _ := newCache(t, 16<<20)
	if err := big.Set("huge", make([]byte, MaxValueSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("over-limit set = %v, want ErrTooLarge", err)
	}
}

func TestCacheFlush(t *testing.T) {
	c, _ := newCache(t, 1<<20)
	_ = c.Set("a", []byte("x"))
	_ = c.Set("b", []byte("y"))
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Items() != 0 || c.Bytes() != 0 {
		t.Error("flush incomplete")
	}
	if _, hit, _ := c.Get("a"); hit {
		t.Error("item survived flush")
	}
	// Cache usable after flush.
	if err := c.Set("c", []byte("z")); err != nil {
		t.Errorf("Set after flush: %v", err)
	}
}

func TestWarmupPopulates(t *testing.T) {
	c, _ := newCache(t, 1<<20)
	n, err := Warmup(c, 512<<10, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || c.Bytes() < 500<<10 || c.Bytes() > 512<<10 {
		t.Errorf("warmup: n=%d bytes=%d", n, c.Bytes())
	}
}

func newServer(t *testing.T, mode Mode) (*Server, *core.System) {
	t.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := NewCache(sys, 1, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sys, cache, ServerConfig{Mode: mode, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return srv, sys
}

func TestServerBasicOps(t *testing.T) {
	for _, mode := range []Mode{ModeNative, ModeSDRaD} {
		t.Run(mode.String(), func(t *testing.T) {
			srv, _ := newServer(t, mode)
			set := workload.Request{Op: workload.OpSet, Key: "k", Value: []byte("v1")}
			if resp := srv.Handle(0, set); !resp.OK || resp.Err != nil {
				t.Fatalf("SET: %+v", resp)
			}
			get := workload.Request{Op: workload.OpGet, Key: "k"}
			resp := srv.Handle(1, get)
			if !resp.OK || string(resp.Value) != "v1" || resp.Err != nil {
				t.Fatalf("GET: %+v", resp)
			}
			if resp.Latency <= 0 {
				t.Error("no latency recorded")
			}
			del := workload.Request{Op: workload.OpDelete, Key: "k"}
			if resp := srv.Handle(0, del); !resp.OK {
				t.Fatalf("DELETE: %+v", resp)
			}
			if resp := srv.Handle(0, get); resp.OK {
				t.Error("GET after DELETE hit")
			}
		})
	}
}

func TestSDRaDContainsMaliciousRequest(t *testing.T) {
	srv, _ := newServer(t, ModeSDRaD)
	// Benign state.
	_ = srv.Handle(0, workload.Request{Op: workload.OpSet, Key: "victim", Value: []byte("data")})

	evil := workload.Request{Op: workload.OpSet, Key: "x", Value: []byte("evil"), Malicious: true}
	resp := srv.Handle(1, evil)
	if !resp.Contained {
		t.Fatalf("attack not contained: %+v", resp)
	}
	if resp.Err == nil {
		t.Error("malicious client should see an error")
	}
	// Cache intact, service live.
	r := srv.Handle(0, workload.Request{Op: workload.OpGet, Key: "victim"})
	if !r.OK || string(r.Value) != "data" {
		t.Errorf("victim data after attack: %+v", r)
	}
	if srv.Stats().Violations != 1 {
		t.Errorf("violations = %d", srv.Stats().Violations)
	}
}

func TestNativeCrashCausesDowntime(t *testing.T) {
	srv, sys := newServer(t, ModeNative)
	// Warm ~2 MB of state so the modeled restart (fork/exec + state
	// warm-up at ~85 MB/s) lasts tens of milliseconds — hundreds of
	// arrival intervals.
	if _, err := Warmup(srv.Cache(), 2<<20, 4096); err != nil {
		t.Fatal(err)
	}
	_ = srv.Handle(0, workload.Request{Op: workload.OpSet, Key: "k", Value: make([]byte, 1024)})

	evil := workload.Request{Op: workload.OpSet, Key: "x", Value: []byte("evil"), Malicious: true}
	resp := srv.Handle(1, evil)
	if !errors.Is(resp.Err, ErrUnavailable) {
		t.Fatalf("crash response = %+v", resp)
	}
	if srv.Stats().Crashes != 1 {
		t.Errorf("crashes = %d", srv.Stats().Crashes)
	}
	// Requests during the restart window are dropped.
	dropped := 0
	for i := 0; i < 100; i++ {
		r := srv.Handle(0, workload.Request{Op: workload.OpGet, Key: "k"})
		if errors.Is(r.Err, ErrUnavailable) {
			dropped++
		}
	}
	if dropped != 100 {
		t.Errorf("dropped %d/100 during restart, want all (restart lasts seconds, arrivals are 100µs apart)", dropped)
	}
	// After the window the service recovers.
	sys.Clock().AdvanceTime(srv.cacheRestartTime())
	r := srv.Handle(0, workload.Request{Op: workload.OpGet, Key: "k"})
	if errors.Is(r.Err, ErrUnavailable) {
		t.Error("service still down after restart window")
	}
}

// cacheRestartTime exposes the modeled restart duration for tests.
func (s *Server) cacheRestartTime() time.Duration {
	return procmodel.ProcessRestart{Cost: s.sys.Clock().Model()}.RecoveryTime(s.cache.Bytes())
}

func TestSDRaDModeNeverDropsBenignTraffic(t *testing.T) {
	srv, _ := newServer(t, ModeSDRaD)
	gen, err := workload.NewKV(workload.KVConfig{Seed: 1, Keys: 100})
	if err != nil {
		t.Fatal(err)
	}
	mal := &workload.MaliciousEvery{G: gen, N: 20}
	benignErrors := 0
	for i := 0; i < 1000; i++ {
		req := mal.Next()
		resp := srv.Handle(i%8, req)
		if !req.Malicious && resp.Err != nil {
			benignErrors++
		}
	}
	if benignErrors != 0 {
		t.Errorf("benign errors under attack = %d, want 0", benignErrors)
	}
	if srv.Stats().Violations != 50 {
		t.Errorf("violations = %d, want 50", srv.Stats().Violations)
	}
}

func TestServerConfigValidation(t *testing.T) {
	sys := core.NewSystem(core.DefaultConfig())
	cache, _ := NewCache(sys, 1, 1<<20)
	if _, err := NewServer(sys, cache, ServerConfig{Mode: Mode(99)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeNative.String() != "native" || ModeSDRaD.String() != "sdrad" {
		t.Error("mode strings")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should render")
	}
}

func TestTTLExpiry(t *testing.T) {
	c, sys := newCache(t, 1<<20)
	if err := c.SetTTL("ephemeral", []byte("gone soon"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("forever", []byte("stays")); err != nil {
		t.Fatal(err)
	}
	// Before expiry: hit.
	if _, hit, _ := c.Get("ephemeral"); !hit {
		t.Fatal("item expired too early")
	}
	// Advance virtual time past the TTL.
	sys.Clock().AdvanceTime(11 * time.Second)
	if _, hit, _ := c.Get("ephemeral"); hit {
		t.Error("item survived its TTL")
	}
	if _, hit, _ := c.Get("forever"); !hit {
		t.Error("non-TTL item vanished")
	}
	st := c.Stats()
	if st.Expired != 1 {
		t.Errorf("expired = %d, want 1", st.Expired)
	}
	// Expired items release their bytes.
	if c.Items() != 1 {
		t.Errorf("items = %d, want 1", c.Items())
	}
	if c.Bytes() != uint64(len("stays")) {
		t.Errorf("bytes = %d", c.Bytes())
	}
}

func TestTTLReplaceResetsExpiry(t *testing.T) {
	c, sys := newCache(t, 1<<20)
	_ = c.SetTTL("k", []byte("v1"), time.Second)
	sys.Clock().AdvanceTime(900 * time.Millisecond)
	_ = c.SetTTL("k", []byte("v2"), time.Second) // replace: fresh TTL
	sys.Clock().AdvanceTime(500 * time.Millisecond)
	v, hit, err := c.Get("k")
	if err != nil || !hit || string(v) != "v2" {
		t.Errorf("Get = %q, %v, %v (replace should reset expiry)", v, hit, err)
	}
}

func TestProtocolTTLRejectsBadExptime(t *testing.T) {
	if _, err := ReadCommand(reader("set k 0 -5 2\r\nxx\r\n")); !errors.Is(err, ErrProtocol) {
		t.Errorf("negative exptime = %v, want ErrProtocol", err)
	}
	if _, err := ReadCommand(reader("set k 0 abc 2\r\nxx\r\n")); !errors.Is(err, ErrProtocol) {
		t.Errorf("garbage exptime = %v, want ErrProtocol", err)
	}
	cmd, err := ReadCommand(reader("set k 0 30 2\r\nxx\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Req.TTL != 30*time.Second {
		t.Errorf("TTL = %v, want 30s", cmd.Req.TTL)
	}
}

func TestServerAppliesTTLFromRequest(t *testing.T) {
	srv, sys := newServer(t, ModeSDRaD)
	set := workload.Request{Op: workload.OpSet, Key: "k", Value: []byte("v"), TTL: time.Second}
	if resp := srv.Handle(0, set); !resp.OK {
		t.Fatalf("SET: %+v", resp)
	}
	sys.Clock().AdvanceTime(2 * time.Second)
	if resp := srv.Handle(0, workload.Request{Op: workload.OpGet, Key: "k"}); resp.OK {
		t.Error("GET hit after TTL")
	}
}

func TestSandboxModeContainsButCostsMore(t *testing.T) {
	sandbox, _ := newServer(t, ModeSandbox)
	sdrad, _ := newServer(t, ModeSDRaD)

	// Containment parity: a malicious request kills only the sandbox
	// child; the service keeps working.
	evil := workload.Request{Op: workload.OpSet, Key: "x", Value: []byte("e"), Malicious: true}
	resp := sandbox.Handle(0, evil)
	if !resp.Contained || resp.Err == nil {
		t.Fatalf("sandbox attack resp: %+v", resp)
	}
	if r := sandbox.Handle(0, workload.Request{Op: workload.OpSet, Key: "k", Value: []byte("v")}); !r.OK {
		t.Fatalf("sandbox post-attack: %+v", r)
	}

	// Cost ordering (§IV): per-request sandbox cost >> SDRaD cost.
	benign := workload.Request{Op: workload.OpGet, Key: "k"}
	var sbTotal, sdTotal time.Duration
	for i := 0; i < 200; i++ {
		sbTotal += sandbox.Handle(0, benign).Latency
		sdTotal += sdrad.Handle(0, benign).Latency
	}
	if sbTotal <= sdTotal*2 {
		t.Errorf("sandbox (%v) should cost >2x sdrad (%v) per request", sbTotal, sdTotal)
	}
}

func TestSandboxModeString(t *testing.T) {
	if ModeSandbox.String() != "sandbox" {
		t.Error("mode string")
	}
}

func TestCacheAccessors(t *testing.T) {
	c, _ := newCache(t, 1<<20)
	if c.StorageUDI() != 1 {
		t.Errorf("StorageUDI = %d", c.StorageUDI())
	}
	if c.StorageKey() == 0 {
		t.Error("StorageKey should not be the default key")
	}
	if c.Capacity() != 1<<20 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
}

func TestWorkersCannotTouchCacheStorage(t *testing.T) {
	// The central isolation property of the memcached retrofit: a worker
	// domain's PKRU can never read or write cache storage pages directly.
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := NewCache(sys, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Set("secret", []byte("cache payload")); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sys, cache, ServerConfig{Mode: ModeSDRaD, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Find the value's address via a root-side lookup of the element.
	el := cache.item["secret"]
	addr := el.Value.(*entry).addr
	verr := sys.Enter(core.UDI(srv.workers[0].UDI()), func(c *core.DomainCtx) error {
		buf := make([]byte, 5)
		c.MustLoad(addr, buf) // must trap: storage-domain key not enabled
		return nil
	})
	if _, ok := core.IsViolation(verr); !ok {
		t.Fatalf("worker read of cache storage = %v, want violation", verr)
	}
	// Data unchanged.
	v, hit, _ := cache.Get("secret")
	if !hit || string(v) != "cache payload" {
		t.Errorf("cache damaged: %q %v", v, hit)
	}
}

func TestServerModeAccessor(t *testing.T) {
	srv, _ := newServer(t, ModeSDRaD)
	if srv.Mode() != ModeSDRaD {
		t.Errorf("Mode = %v", srv.Mode())
	}
}

func TestApplyUnknownOp(t *testing.T) {
	srv, _ := newServer(t, ModeSDRaD)
	resp := srv.Handle(0, workload.Request{Op: workload.Op(9), Key: "k"})
	if resp.Err == nil {
		t.Error("unknown op accepted")
	}
}

func TestFlagsRoundTrip(t *testing.T) {
	srv, _ := newServer(t, ModeSDRaD)
	set := workload.Request{Op: workload.OpSet, Key: "k", Value: []byte("v"), Flags: 0xdead}
	if resp := srv.Handle(0, set); !resp.OK {
		t.Fatalf("SET: %+v", resp)
	}
	resp := srv.Handle(0, workload.Request{Op: workload.OpGet, Key: "k"})
	if !resp.OK || resp.Flags != 0xdead {
		t.Errorf("GET flags = %#x, want 0xdead", resp.Flags)
	}
	// Over the wire.
	cmd, err := ReadCommand(reader("set f 42 0 2\r\nxy\r\n"))
	if err != nil || cmd.Req.Flags != 42 {
		t.Fatalf("parsed flags = %d, %v", cmd.Req.Flags, err)
	}
	r2 := srv.Handle(0, cmd.Req)
	if !r2.OK {
		t.Fatal(r2.Err)
	}
	var buf bytes.Buffer
	get := workload.Request{Op: workload.OpGet, Key: "f"}
	if err := WriteResponse(&buf, get, srv.Handle(0, get)); err != nil {
		t.Fatal(err)
	}
	if want := "VALUE f 42 2\r\nxy\r\nEND\r\n"; buf.String() != want {
		t.Errorf("wire = %q, want %q", buf.String(), want)
	}
	if _, err := ReadCommand(reader("set k abc 0 2\r\nxy\r\n")); !errors.Is(err, ErrProtocol) {
		t.Errorf("bad flags = %v, want ErrProtocol", err)
	}
}
