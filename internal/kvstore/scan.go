package kvstore

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the paginated scan path: a cursor-driven, prefix-filtered
// walk over the cache's keys in sorted order. Scans are served from the
// trusted side (like stats): the key table is server metadata, values
// are copied out of the storage domain without entering it, and every
// page is charged to the virtual clock in proportion to the bytes it
// touches — a scan is not a free snapshot. The network front end admits
// each page through the per-tenant gateway quota, so a tenant cannot
// starve others by walking the whole table in one burst.

// MaxScanPage is the per-page item cap: a scan request may ask for at
// most this many items, and larger requests are clamped. Pagination is
// the anti-starvation contract — each page re-enters admission.
const MaxScanPage = 64

// ScanItem is one key-value pair returned by a scan page.
type ScanItem struct {
	// Key is the item's key.
	Key string
	// Value is a copy of the item's value.
	Value []byte
	// Flags is the client's opaque flags word.
	Flags uint32
}

// ScanResult is one scan page: up to the requested limit of items in
// ascending key order, plus a resume cursor when more remain.
type ScanResult struct {
	// Items holds the page's items, ascending by key.
	Items []ScanItem
	// Cursor, when non-empty, is the last key of this page; passing it
	// to the next scan resumes strictly after it. Empty means the scan
	// is complete.
	Cursor string
}

// Scan returns up to limit unexpired items whose keys match prefix
// (empty = all), in ascending key order, starting strictly after
// cursor (empty = from the beginning). Expired items encountered on
// the walk are lazily removed, as with Get. The virtual clock is
// charged per item visited in proportion to key and value bytes.
func (c *Cache) Scan(prefix, cursor string, limit int) (ScanResult, error) {
	if limit <= 0 || limit > MaxScanPage {
		limit = MaxScanPage
	}
	keys := make([]string, 0, len(c.item))
	for k := range c.item {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	clk := c.sys.Clock()
	cost := clk.Model()
	var out ScanResult
	now := clk.Now()
	for _, k := range keys {
		if k <= cursor && cursor != "" {
			continue
		}
		if prefix != "" && !strings.HasPrefix(k, prefix) {
			continue
		}
		el := c.item[k]
		e := el.Value.(*entry)
		// The walk reads the key table and the value bytes: charge both.
		clk.Advance(cost.MemPerByte * uint64(len(k)+e.size))
		if e.expireAt > 0 && now >= e.expireAt {
			if err := c.removeElement(el); err != nil {
				return ScanResult{}, err
			}
			c.expired++
			continue
		}
		if len(out.Items) == limit {
			// One more live key exists past the page: report a cursor.
			out.Cursor = out.Items[len(out.Items)-1].Key
			return out, nil
		}
		var val []byte
		if e.size > 0 {
			v, err := c.sys.CopyFromDomain(e.addr, e.size)
			if err != nil {
				return ScanResult{}, fmt.Errorf("kvstore: scan %q: %w", k, err)
			}
			val = v
		} else {
			val = []byte{}
		}
		out.Items = append(out.Items, ScanItem{Key: k, Value: val, Flags: e.flags})
	}
	return out, nil
}

// Scan serves one scan page on the server: the drain and fail-stop
// gates hold as for any request, the page costs an arrival slot plus
// the network round trip on the virtual clock, and the cache walk
// charges per item visited (see Cache.Scan).
func (s *Server) Scan(prefix, cursor string, limit int) (ScanResult, error) {
	if s.drained {
		s.requests++
		s.dropped++
		return ScanResult{}, ErrDrained
	}
	if s.persistErr != nil {
		s.requests++
		s.dropped++
		return ScanResult{}, s.failStopResponse().Err
	}
	s.requests++
	clk := s.sys.Clock()
	cost := clk.Model()
	clk.AdvanceTime(s.cfg.InterArrival) // arrival spacing
	clk.Advance(2 * cost.Syscall)       // network receive + send
	return s.cache.Scan(prefix, cursor, limit)
}

// Scan serves one scan page across the pool: every shard scans from
// the same cursor, the per-shard pages merge in ascending key order,
// and the merged page truncates to the limit with a resume cursor when
// more remain. Correct because each shard returns its first matching
// keys after the cursor — the globally smallest limit keys are always
// within the union of the per-shard pages.
func (p *Pool) Scan(prefix, cursor string, limit int) (ScanResult, error) {
	if limit <= 0 || limit > MaxScanPage {
		limit = MaxScanPage
	}
	var items []ScanItem
	more := false
	for _, sh := range p.shards {
		sh.mu.Lock()
		res, err := sh.srv.Scan(prefix, cursor, limit)
		sh.mu.Unlock()
		if err != nil {
			return ScanResult{}, err
		}
		if res.Cursor != "" {
			more = true
		}
		items = append(items, res.Items...)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Key < items[j].Key })
	var out ScanResult
	if len(items) > limit {
		items = items[:limit]
		more = true
	}
	out.Items = items
	if more && len(items) > 0 {
		out.Cursor = items[len(items)-1].Key
	}
	return out, nil
}
