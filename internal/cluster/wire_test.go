package cluster

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/lifecycle"
	"repro/internal/workload"
)

// TestWireRequestRoundTrip encodes and decodes representative requests
// and asserts full structural fidelity.
func TestWireRequestRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		clientID int
		req      workload.Request
	}{
		{"get", 7, workload.Request{Op: workload.OpGet, Key: "key-00000042"}},
		{"set", 0, workload.Request{Op: workload.OpSet, Key: "k", Value: []byte("v"), Flags: 99, TTL: 3 * time.Second}},
		{"set-empty-value", 3, workload.Request{Op: workload.OpSet, Key: "empty", Value: []byte{}}},
		{"delete", 12, workload.Request{Op: workload.OpDelete, Key: "gone"}},
		{"malicious", 5, workload.Request{Op: workload.OpSet, Key: "evil", Value: bytes.Repeat([]byte{0xff}, 300), Malicious: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := DecodeRequest(EncodeRequest(tc.clientID, tc.req))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if f.ClientID != tc.clientID {
				t.Errorf("clientID = %d, want %d", f.ClientID, tc.clientID)
			}
			if f.Req.Op != tc.req.Op || f.Req.Key != tc.req.Key ||
				f.Req.Flags != tc.req.Flags || f.Req.TTL != tc.req.TTL ||
				f.Req.Malicious != tc.req.Malicious {
				t.Errorf("request = %+v, want %+v", f.Req, tc.req)
			}
			if len(tc.req.Value) != len(f.Req.Value) || (len(tc.req.Value) > 0 && !bytes.Equal(f.Req.Value, tc.req.Value)) {
				t.Errorf("value = %v, want %v", f.Req.Value, tc.req.Value)
			}
		})
	}
}

// TestWireMembershipRoundTrip encodes and decodes a membership
// snapshot and asserts fidelity.
func TestWireMembershipRoundTrip(t *testing.T) {
	members := []Member{
		{ID: 0, State: lifecycle.StateHealthy, Age: 0},
		{ID: 1, State: lifecycle.StateDegraded, Age: 9},
		{ID: 4, State: lifecycle.StateStopped, Age: 40},
	}
	f, err := DecodeMembership(EncodeMembership(17, 123, members))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Epoch != 17 || f.Now != 123 {
		t.Errorf("epoch/now = %d/%d, want 17/123", f.Epoch, f.Now)
	}
	if len(f.Members) != len(members) {
		t.Fatalf("members = %d, want %d", len(f.Members), len(members))
	}
	for i, m := range members {
		got := f.Members[i]
		if got.ID != m.ID || got.State != m.State || got.Age != m.Age {
			t.Errorf("member %d = %+v, want %+v", i, got, m)
		}
	}
}

// TestWireDecodeRejections asserts the codec rejects malformed frames
// with typed ErrWire, exercising each validation branch.
func TestWireDecodeRejections(t *testing.T) {
	good := EncodeRequest(1, workload.Request{Op: workload.OpSet, Key: "k", Value: []byte("v")})
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"bad-magic", []byte{'X', 1, 1, 0}},
		{"bad-version", []byte{'S', 9, 1, 0}},
		{"wrong-frame-type", EncodeMembership(1, 1, nil)},
		{"truncated", good[:len(good)-1]},
		{"trailing", append(append([]byte{}, good...), 0)},
		{"bad-op", []byte{'S', 1, 1, 0, 9, 0, 0, 0, 1, 'k', 0}},
		{"huge-key", []byte{'S', 1, 1, 0, 0, 0, 0, 0, 0xff, 0xff, 0x7f}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeRequest(tc.b); !errors.Is(err, ErrWire) {
				t.Errorf("DecodeRequest(%v) err = %v, want ErrWire", tc.b, err)
			}
		})
	}
	if _, err := DecodeMembership([]byte{'S', 1, 3, 1, 1, 2, 1, 2, 0, 0, 2, 0}); !errors.Is(err, ErrWire) {
		t.Errorf("non-ascending membership ids: err = %v, want ErrWire", err)
	}
}

// FuzzWireDecode hardens the router's decode surface: arbitrary bytes
// must either decode cleanly or be rejected with an error — never
// panic, and a successful request decode must survive a re-encode
// round trip (canonicalization check).
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRequest(3, workload.Request{Op: workload.OpGet, Key: "key-00000001"}))
	f.Add(EncodeRequest(1, workload.Request{Op: workload.OpSet, Key: "k", Value: []byte("value"), Flags: 7, TTL: time.Second}))
	f.Add(EncodeRequest(0, workload.Request{Op: workload.OpDelete, Key: "key-00000002", Malicious: true}))
	f.Add(EncodeMembership(3, 99, []Member{{ID: 0, State: 1, Age: 2}, {ID: 7, State: 4, Age: 30}}))
	f.Add([]byte{'S', 1, 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		if fr, err := DecodeRequest(b); err == nil {
			fr2, err2 := DecodeRequest(EncodeRequest(fr.ClientID, fr.Req))
			if err2 != nil {
				t.Fatalf("re-encode of accepted frame rejected: %v", err2)
			}
			if fr2.Req.Key != fr.Req.Key || fr2.Req.Op != fr.Req.Op {
				t.Fatalf("round trip diverged: %+v vs %+v", fr2, fr)
			}
		}
		_, _ = DecodeMembership(b)
	})
}
