package cluster

import "sort"

// NodeID identifies a cluster node. IDs are small non-negative integers
// assigned by the operator (or the router's -nodes flag); identity is
// stable across restarts, so a rejoining node reclaims the slots the
// rendezvous ranking gave it before it left.
type NodeID int

// NumSlots is the number of fixed virtual slots keys hash onto. Slots —
// not keys — are the unit of placement and handoff: the router tracks
// an owner (and replica set) per slot, so membership changes move whole
// slots and the routing table stays O(NumSlots) regardless of key
// count.
const NumSlots = 64

// FNV-1a constants (hash/fnv), inlined like the pool's shard hash so
// the per-request routing path allocates nothing.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// KeySlot maps a key to its virtual slot. Every operation on a key
// lands on the same slot — the cluster-level consistency invariant,
// mirroring the pool's key→shard rule one level down.
func KeySlot(key string) int {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return int(h % NumSlots)
}

// slotWeight is the rendezvous weight of node id for slot: a
// deterministic 64-bit mix (splitmix64 finalizer) of the pair. Highest
// weight wins ownership; the next-ranked nodes are the replica set.
func slotWeight(slot int, id NodeID) uint64 {
	z := uint64(slot)<<32 ^ uint64(uint32(id))
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RankNodes orders ids for slot by descending rendezvous weight (ties
// break on the lower id, so the order is total and deterministic). The
// first entry is the slot's owner, the following entries the replica
// candidates. Rendezvous hashing gives the minimal-reshuffle property:
// removing a node changes only the slots it appeared in at the
// affected rank, and re-adding it restores exactly the prior ranking.
func RankNodes(slot int, ids []NodeID) []NodeID {
	out := append([]NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool {
		wi, wj := slotWeight(slot, out[i]), slotWeight(slot, out[j])
		if wi != wj {
			return wi > wj
		}
		return out[i] < out[j]
	})
	return out
}
