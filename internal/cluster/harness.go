package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/workload"
)

// Harness implements campaign.ClusterRunner over real routers and
// pools: the same pre-generated seeded schedule plays into a cluster
// of N nodes (with the scenario's membership fault plan fired between
// requests, or between waves when batched) and into one Pool, and both
// sides' per-request outcomes and survivor dumps are returned for the
// oracle's verdict.
//
// The single-pool side mirrors cluster-side unavailable nacks by
// skipping those indices (shadow-skip): an unavailable nack is the
// router's promise the request executed nowhere, so skipping it is the
// only execution the single side can perform that preserves equality —
// and the oracle still checks the nack carried no success bit and no
// value.
type Harness struct {
	// Workers is each server's worker-domain count (0 = 2).
	Workers int
	// Keys and ValueSize shape the seeded workload (0 = 256 / 96).
	Keys      int
	ValueSize int
}

// harnessCapacity is sized so scenarios never evict: the survivor
// state is then exactly the acked mutation history on both sides.
const harnessCapacity = 64 << 20

// serverConfig builds the per-node (and single-pool) server config.
func (h *Harness) serverConfig() kvstore.ServerConfig {
	workers := h.Workers
	if workers <= 0 {
		workers = 2
	}
	return kvstore.ServerConfig{
		Mode:         kvstore.ModeSDRaD,
		Workers:      workers,
		InterArrival: time.Nanosecond,
	}
}

// schedule pre-generates the scenario's full request list once — both
// sides replay the identical slice.
func (h *Harness) schedule(sc campaign.ClusterScenario) ([]workload.Request, error) {
	keys := h.Keys
	if keys <= 0 {
		keys = 256
	}
	valueSize := h.ValueSize
	if valueSize <= 0 {
		valueSize = 96
	}
	kv, err := workload.NewKV(workload.KVConfig{
		Seed:        sc.Seed,
		Keys:        keys,
		ValueSize:   valueSize,
		GetFraction: 0.4, // write-heavy: replication and handoff under load
	})
	if err != nil {
		return nil, err
	}
	var gen interface{ Next() workload.Request } = kv
	if sc.AttackEvery > 0 {
		gen = &workload.MaliciousEvery{G: kv, N: sc.AttackEvery}
	}
	reqs := make([]workload.Request, sc.Requests)
	for i := range reqs {
		reqs[i] = gen.Next()
	}
	return reqs, nil
}

// applyEvent fires one membership fault on the router.
func applyEvent(r *Router, ev campaign.ClusterEvent) error {
	id := NodeID(ev.Node)
	switch ev.Kind {
	case campaign.ClusterEventKill:
		return r.FailNode(id)
	case campaign.ClusterEventRestart:
		return r.JoinNode(id)
	case campaign.ClusterEventRetire:
		return r.RetireNode(id)
	case campaign.ClusterEventPartition:
		return r.PartitionNode(id)
	case campaign.ClusterEventHeal:
		return r.HealNode(id)
	default:
		return fmt.Errorf("cluster: unknown event kind %q", ev.Kind)
	}
}

// classify maps one response to the oracle's outcome currency.
func classify(i int, resp kvstore.Response) campaign.ClusterOutcome {
	o := campaign.ClusterOutcome{I: i, OK: resp.OK}
	switch {
	case resp.Err != nil:
		if _, ok := IsUnavailable(resp.Err); ok {
			o.Outcome = campaign.OutcomeUnavailable
		} else {
			o.Outcome = campaign.OutcomeError
		}
	case resp.Contained:
		o.Outcome = campaign.OutcomeDetected
	default:
		o.Outcome = campaign.OutcomeOK
		o.ValueHash = hashBytes(resp.Value)
	}
	return o
}

// hashBytes digests a returned value (FNV-1a; 0 for no value).
func hashBytes(b []byte) uint64 {
	if len(b) == 0 {
		return 0
	}
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// RunCluster implements campaign.ClusterRunner.
func (h *Harness) RunCluster(sc campaign.ClusterScenario) (campaign.ClusterRun, error) {
	var run campaign.ClusterRun
	if sc.Requests <= 0 || sc.Nodes <= 0 {
		return run, fmt.Errorf("cluster: scenario %q: empty schedule or fleet", sc.Name)
	}
	reqs, err := h.schedule(sc)
	if err != nil {
		return run, err
	}

	// Cluster side.
	router, err := NewRouter(RouterConfig{
		Nodes:        sc.Nodes,
		Replicas:     sc.Replicas,
		Sys:          core.DefaultConfig(),
		Server:       h.serverConfig(),
		Capacity:     harnessCapacity,
		ReadReplicas: sc.ReadReplicas,
	})
	if err != nil {
		return run, fmt.Errorf("cluster: scenario %q: build router: %w", sc.Name, err)
	}
	defer func() {
		_ = router.Close() //lint:errclass harness teardown after the run's state is captured
	}()
	ctx := context.Background()
	outcomes := make([]campaign.ClusterOutcome, sc.Requests)
	evIdx := 0
	fire := func(upTo int) error {
		for evIdx < len(sc.Events) && sc.Events[evIdx].At <= upTo {
			if err := applyEvent(router, sc.Events[evIdx]); err != nil {
				return fmt.Errorf("cluster: scenario %q: event %d (%s node %d): %w",
					sc.Name, evIdx, sc.Events[evIdx].Kind, sc.Events[evIdx].Node, err)
			}
			run.EventsApplied++
			evIdx++
		}
		return nil
	}
	if sc.Batch <= 0 {
		for i, req := range reqs {
			if err := fire(i); err != nil {
				return run, err
			}
			outcomes[i] = classify(i, router.HandleContext(ctx, i, req))
		}
	} else {
		for ws := 0; ws < sc.Requests; ws += sc.Batch {
			if err := fire(ws); err != nil {
				return run, err
			}
			n := sc.Batch
			if remain := sc.Requests - ws; remain < n {
				n = remain
			}
			wave := make([]kvstore.BatchRequest, n)
			for k := range wave {
				wave[k] = kvstore.BatchRequest{Ctx: ctx, ClientID: ws + k, Req: reqs[ws+k]}
			}
			for k, resp := range router.HandleBatch(wave) {
				outcomes[ws+k] = classify(ws+k, resp)
			}
		}
	}
	// Any plan events past the last request fire before the final dump.
	if err := fire(sc.Requests); err != nil {
		return run, err
	}
	clusterState, err := router.Dump()
	if err != nil {
		return run, fmt.Errorf("cluster: scenario %q: cluster dump: %w", sc.Name, err)
	}
	run.Cluster = outcomes
	run.ClusterDigest = campaign.DigestState(clusterState)
	run.Handoffs = router.Handoffs()
	skip := make(map[int]bool)
	for _, o := range outcomes {
		if o.Outcome == campaign.OutcomeUnavailable {
			skip[o.I] = true
			run.Unavailable++
		}
	}

	// Single-pool side: the same schedule into one pool, shadow-skipping
	// the indices the cluster promised it never executed.
	pool, err := kvstore.NewPool(core.DefaultConfig(), h.serverConfig(), sc.Nodes, harnessCapacity)
	if err != nil {
		return run, fmt.Errorf("cluster: scenario %q: build pool: %w", sc.Name, err)
	}
	defer func() {
		_ = pool.Close() //lint:errclass harness teardown after the run's state is captured
	}()
	single := make([]campaign.ClusterOutcome, sc.Requests)
	if sc.Batch <= 0 {
		for i, req := range reqs {
			if skip[i] {
				single[i] = campaign.ClusterOutcome{I: i, Outcome: campaign.OutcomeUnavailable}
				continue
			}
			single[i] = classify(i, pool.HandleContext(ctx, i, req))
		}
	} else {
		for ws := 0; ws < sc.Requests; ws += sc.Batch {
			n := sc.Batch
			if remain := sc.Requests - ws; remain < n {
				n = remain
			}
			var wave []kvstore.BatchRequest
			var idxs []int
			for k := 0; k < n; k++ {
				i := ws + k
				if skip[i] {
					single[i] = campaign.ClusterOutcome{I: i, Outcome: campaign.OutcomeUnavailable}
					continue
				}
				wave = append(wave, kvstore.BatchRequest{Ctx: ctx, ClientID: i, Req: reqs[i]})
				idxs = append(idxs, i)
			}
			for k, resp := range pool.HandleBatchMixed(wave) {
				single[idxs[k]] = classify(idxs[k], resp)
			}
		}
	}
	singleState, err := pool.DumpAll()
	if err != nil {
		return run, fmt.Errorf("cluster: scenario %q: single dump: %w", sc.Name, err)
	}
	run.Single = single
	run.SingleDigest = campaign.DigestState(singleState)
	return run, nil
}

// Interface compliance: the harness implements the campaign's cluster
// differential contract.
var _ campaign.ClusterRunner = (*Harness)(nil)
