package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/lifecycle"
	"repro/internal/lifecycle/lifecycletest"
)

// TestLifecycleConformanceCluster runs the shared lifecycle battery
// against the cluster tier's two components: the router (which owns a
// node fleet and a registry) and the registry itself. Both follow the
// deferred-construction pattern, so New builds pristine un-Inited
// instances.
func TestLifecycleConformanceCluster(t *testing.T) {
	lifecycletest.Run(t, []lifecycletest.Case{
		{
			Name: "cluster.Router",
			New: func(t *testing.T) lifecycle.Component {
				return NewDeferredRouter(RouterConfig{
					Nodes:    2,
					Replicas: 1,
					Sys:      core.DefaultConfig(),
					Server:   kvstore.ServerConfig{Mode: kvstore.ModeSDRaD},
					Capacity: 16 << 20,
				})
			},
		},
		{
			Name: "cluster.Registry",
			New: func(t *testing.T) lifecycle.Component {
				return NewDeferredRegistry(4)
			},
		},
	})
}
