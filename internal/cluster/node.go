package cluster

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/lifecycle"
	"repro/internal/workload"
)

// NodeConfig configures one cluster node.
type NodeConfig struct {
	// ID is the node's stable identity.
	ID NodeID
	// Sys configures the simulated machines of the node's pool shards.
	Sys core.Config
	// Server configures each shard's kvstore server.
	Server kvstore.ServerConfig
	// Shards is the node-local shard count (default 1: the cluster is
	// the scale-out dimension; node-local sharding stays available).
	Shards int
	// Capacity is the node's total cache capacity in bytes (default
	// 64 MiB).
	Capacity uint64
	// Registry, when set, is where Start registers the node's session
	// and Drain deregisters it.
	Registry *Registry
}

// Node is one cluster member: a full kvstore.Pool (its own simulated
// machines, storage domains, and parser worker domains) plus a
// registry session. It implements lifecycle.Component with the
// deferred-construction pattern: NewNode is cheap, Init builds the
// pool, Start begins serving and registers the session.
//
// Node is safe for concurrent use to the extent the pool is (per-shard
// locking); the router's membership lock serializes lifecycle events
// against dispatch.
type Node struct {
	lc  *lifecycle.Machine
	cfg NodeConfig

	pool *kvstore.Pool
}

// NewNode constructs a node without allocating its pool. Call Init and
// Start (or let the router do it).
func NewNode(cfg NodeConfig) *Node {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 64 << 20
	}
	return &Node{
		lc:  lifecycle.NewMachine(fmt.Sprintf("cluster.Node[%d]", cfg.ID)),
		cfg: cfg,
	}
}

// ID returns the node's identity.
func (n *Node) ID() NodeID { return n.cfg.ID }

// Init builds the node's pool. Legal exactly once, from
// StateInitializing.
func (n *Node) Init() error {
	return n.lc.Init(func() error {
		p := kvstore.NewDeferredPool(n.cfg.Sys, n.cfg.Server, n.cfg.Shards, n.cfg.Capacity)
		if err := p.Init(); err != nil {
			return fmt.Errorf("cluster: node %d: %w", n.cfg.ID, err)
		}
		if err := p.Start(); err != nil {
			return fmt.Errorf("cluster: node %d: %w", n.cfg.ID, err)
		}
		n.pool = p
		return nil
	})
}

// Start makes the node serve and opens its registry session. Legal
// exactly once, after Init.
func (n *Node) Start() error {
	return n.lc.Start(func() error {
		if n.cfg.Registry != nil {
			if err := n.cfg.Registry.Register(n.cfg.ID); err != nil {
				return err
			}
		}
		return nil
	})
}

// Heartbeat renews the node's registry lease. The router calls it for
// every reachable node as the membership clock advances; a crashed or
// partitioned node simply stops heartbeating, which is what makes its
// lease expire.
func (n *Node) Heartbeat() error {
	if n.cfg.Registry == nil {
		return nil
	}
	return n.cfg.Registry.Renew(n.cfg.ID)
}

// Drain stops admission gracefully (pool drain: queued work preserved,
// final WAL commit on durable nodes) and closes the registry session.
// Idempotent.
func (n *Node) Drain() error {
	return n.lc.Drain(func() error {
		if n.cfg.Registry != nil {
			if err := n.cfg.Registry.Deregister(n.cfg.ID); err != nil {
				if _, ok := IsMembership(err); !ok {
					return err
				}
				// A dead session was already swept: deregistering it again
				// is the crash-then-drain race, not an error.
			}
		}
		return n.pool.Drain()
	})
}

// Stop tears the node down. A second Stop returns a typed
// *LifecycleError (use Close for the idempotent form).
func (n *Node) Stop(ctx context.Context) error {
	_ = ctx
	return n.lc.Stop(n.teardown)
}

// Close is the idempotent form of Stop.
func (n *Node) Close() error { return n.lc.Close(n.teardown) }

// teardown releases the pool.
func (n *Node) teardown() error {
	if n.pool == nil {
		return nil
	}
	return n.pool.Close()
}

// State returns the node's lifecycle state.
func (n *Node) State() lifecycle.State { return n.lc.State() }

// Interface compliance: the node implements the shared lifecycle
// contract.
var _ lifecycle.Component = (*Node)(nil)

// HandleContext serves one request on the node's pool.
func (n *Node) HandleContext(ctx context.Context, clientID int, req workload.Request) kvstore.Response {
	return n.pool.HandleContext(ctx, clientID, req)
}

// HandleBatch serves a mixed-key batch on the node's pool as pipelined
// per-shard units, preserving arrival order per key.
func (n *Node) HandleBatch(batch []kvstore.BatchRequest) []kvstore.Response {
	return n.pool.HandleBatchMixed(batch)
}

// Apply performs a trusted-side replica apply: the mutation was parsed,
// admitted, and acknowledged by the slot's primary, so the replica
// applies it directly to its cache (and, on durable nodes, commits it
// to its WAL) without re-parsing — log shipping, not request
// re-execution. Detections therefore count once, on the primary.
func (n *Node) Apply(req workload.Request) error {
	return n.pool.Apply(req)
}

// Dump returns the node's full key→value state (union over its
// shards), for handoff syncs and survivor digests.
func (n *Node) Dump() (map[string][]byte, error) {
	return n.pool.DumpAll()
}

// Scan pages through the node's keys in sorted order (see Pool.Scan).
func (n *Node) Scan(prefix, cursor string, limit int) (kvstore.ScanResult, error) {
	return n.pool.Scan(prefix, cursor, limit)
}

// Stats aggregates the pool's server accounting.
func (n *Node) Stats() kvstore.ServerStats { return n.pool.Stats() }

// VirtualTime returns the node's parallel makespan (max across its
// shards' simulated machines).
func (n *Node) VirtualTime() int64 { return int64(n.pool.VirtualTime()) }

// Pool exposes the underlying pool for tests that need shard-level
// access.
func (n *Node) Pool() *kvstore.Pool { return n.pool }
