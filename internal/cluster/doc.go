// Package cluster is the distributed sharded tier on top of the
// single-process kvstore Pool: N nodes — each a full kvstore.Pool with
// its own simulated machines — behind a router that places keys by
// consistent hashing over fixed virtual slots, tracks node health
// through lease-based registration (the Milvus session-lease pattern:
// a node that stops renewing its lease is first Degraded, then Dead),
// hands a dead node's slots off to the survivors, and optionally
// serves reads from synchronous replicas.
//
// The tier is built entirely from the repository's existing invariants:
//
//   - Lifecycle. Router, Registry, and Node all embed
//     lifecycle.Machine and pass the shared lifecycletest conformance
//     battery (deferred construction, Init → Start → Drain → Stop,
//     typed *LifecycleError refusals). A node's lease state reuses the
//     lifecycle vocabulary — Healthy / Degraded (lease stale, grace
//     window) / Stopped (lease expired, node dead).
//
//   - Determinism. The membership clock counts request arrivals and
//     explicit ticks, never wall time, so lease expiry — and therefore
//     failover — is a pure function of the request schedule. The
//     wallclock lint gate holds for this package like every other.
//
//   - The differential oracle. A cluster of N nodes must produce the
//     same per-request outcomes and the same survivor digest as a
//     single kvstore.Pool given the same seeded schedule — serially
//     and batched, through node crashes and rolling restarts. The
//     oracle contract lives in internal/campaign (ClusterRunner /
//     CheckCluster, keeping campaign free of kvstore imports); Harness
//     in this package implements it and cmd/sdrad-campaign wires it
//     into `make campaign-smoke`.
//
// Placement: keys hash onto NumSlots fixed virtual slots (FNV-1a, the
// same hash family the pool uses for shards); each slot's owner and
// replicas are chosen by rendezvous (highest-random-weight) hashing
// over the live membership, so a node's death moves exactly its own
// slots and a rejoin reclaims exactly the slots it owned before.
// Writes acknowledged by a slot's primary are applied synchronously to
// the slot's replicas before the router acks the client (and, on
// durable nodes, group-commit to the replica's WAL first), which is
// what makes crash handoff lossless when Replicas >= 2. DESIGN.md §14
// develops the placement rule, the handoff-vs-WAL ordering, and the
// oracle soundness argument.
package cluster
