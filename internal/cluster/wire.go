package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/kvstore"
	"repro/internal/lifecycle"
	"repro/internal/workload"
)

// This file is the cluster wire codec: the compact binary frames the
// router ships to nodes (requests) and to operators/peers (membership
// snapshots). The router's dispatch path really encodes and decodes
// every forwarded request — the hop is in-process today, but the codec
// is the seam a TCP transport plugs into, and it is the attack surface
// the FuzzWireDecode target hardens: DecodeRequest and
// DecodeMembership must reject arbitrary bytes with ErrWire, never
// panic or over-allocate.

// Wire framing constants.
const (
	// wireMagic is the first byte of every frame.
	wireMagic = 'S'
	// wireVersion is the codec version.
	wireVersion = 1
	// frameRequest and frameMembership are the frame type bytes.
	frameRequest    = 1
	frameMembership = 3
)

// Decode hardening bounds: a frame claiming more than these is
// rejected before any allocation is sized from attacker bytes.
const (
	// MaxWireKeyLen bounds a request frame's key.
	MaxWireKeyLen = 256
	// MaxWireMembers bounds a membership frame's member count.
	MaxWireMembers = 1024
)

// ErrWire is the typed rejection for malformed wire frames.
var ErrWire = errors.New("cluster: malformed wire frame")

// RequestFrame is a decoded request frame: the submitting client and
// the key-value operation.
type RequestFrame struct {
	// ClientID is the submitting client (worker-domain placement).
	ClientID int
	// Req is the operation.
	Req workload.Request
}

// MemberRecord is one node's row in a membership frame.
type MemberRecord struct {
	// ID is the node.
	ID NodeID
	// State is the lease-derived health.
	State MemberState
	// Age is the cycles since the last lease renewal.
	Age uint64
}

// MembershipFrame is a decoded membership snapshot.
type MembershipFrame struct {
	// Epoch is the membership epoch; Now the membership clock.
	Epoch uint64
	Now   uint64
	// Members is the membership in ascending id order.
	Members []MemberRecord
}

// appendUvarint appends v as a uvarint.
func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// uvarint reads a uvarint from b, returning the value and the bytes
// consumed (0 on malformed input).
func uvarint(b []byte) (uint64, int) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0
	}
	return v, n
}

// EncodeRequest renders one forwarded request as a wire frame.
func EncodeRequest(clientID int, req workload.Request) []byte {
	out := make([]byte, 0, 16+len(req.Key)+len(req.Value))
	out = append(out, wireMagic, wireVersion, frameRequest)
	out = appendUvarint(out, uint64(clientID))
	out = append(out, byte(req.Op))
	mal := byte(0)
	if req.Malicious {
		mal = 1
	}
	out = append(out, mal)
	out = appendUvarint(out, uint64(req.Flags))
	out = appendUvarint(out, uint64(req.TTL))
	out = appendUvarint(out, uint64(len(req.Key)))
	out = append(out, req.Key...)
	out = appendUvarint(out, uint64(len(req.Value)))
	out = append(out, req.Value...)
	return out
}

// DecodeRequest parses a request frame, rejecting malformed or
// out-of-bounds input with ErrWire.
func DecodeRequest(b []byte) (RequestFrame, error) {
	var f RequestFrame
	if len(b) < 3 || b[0] != wireMagic || b[1] != wireVersion || b[2] != frameRequest {
		return f, fmt.Errorf("%w: bad header", ErrWire)
	}
	b = b[3:]
	cid, n := uvarint(b)
	if n == 0 || cid > uint64(1)<<31 {
		return f, fmt.Errorf("%w: client id", ErrWire)
	}
	b = b[n:]
	if len(b) < 2 {
		return f, fmt.Errorf("%w: truncated op", ErrWire)
	}
	op := workload.Op(b[0])
	if op != workload.OpGet && op != workload.OpSet && op != workload.OpDelete {
		return f, fmt.Errorf("%w: unknown op %d", ErrWire, b[0])
	}
	mal := b[1]
	if mal > 1 {
		return f, fmt.Errorf("%w: malicious flag", ErrWire)
	}
	b = b[2:]
	flags, n := uvarint(b)
	if n == 0 || flags > uint64(^uint32(0)) {
		return f, fmt.Errorf("%w: flags", ErrWire)
	}
	b = b[n:]
	ttl, n := uvarint(b)
	if n == 0 || ttl > uint64(1)<<62 {
		return f, fmt.Errorf("%w: ttl", ErrWire)
	}
	b = b[n:]
	klen, n := uvarint(b)
	if n == 0 || klen == 0 || klen > MaxWireKeyLen {
		return f, fmt.Errorf("%w: key length", ErrWire)
	}
	b = b[n:]
	if uint64(len(b)) < klen {
		return f, fmt.Errorf("%w: truncated key", ErrWire)
	}
	key := string(b[:klen])
	b = b[klen:]
	vlen, n := uvarint(b)
	if n == 0 || vlen > kvstore.MaxValueSize {
		return f, fmt.Errorf("%w: value length", ErrWire)
	}
	b = b[n:]
	if uint64(len(b)) != vlen {
		return f, fmt.Errorf("%w: value length mismatch", ErrWire)
	}
	f.ClientID = int(cid)
	f.Req = workload.Request{
		Op:        op,
		Key:       key,
		Flags:     uint32(flags),
		TTL:       time.Duration(ttl),
		Malicious: mal == 1,
	}
	if vlen > 0 {
		f.Req.Value = append([]byte(nil), b[:vlen]...)
	}
	return f, nil
}

// EncodeMembership renders a membership snapshot as a wire frame.
func EncodeMembership(epoch, now uint64, members []Member) []byte {
	out := make([]byte, 0, 8+8*len(members))
	out = append(out, wireMagic, wireVersion, frameMembership)
	out = appendUvarint(out, epoch)
	out = appendUvarint(out, now)
	out = appendUvarint(out, uint64(len(members)))
	for _, m := range members {
		out = appendUvarint(out, uint64(uint32(m.ID)))
		out = append(out, byte(m.State))
		out = appendUvarint(out, m.Age)
	}
	return out
}

// DecodeMembership parses a membership frame, rejecting malformed or
// out-of-bounds input with ErrWire.
func DecodeMembership(b []byte) (MembershipFrame, error) {
	var f MembershipFrame
	if len(b) < 3 || b[0] != wireMagic || b[1] != wireVersion || b[2] != frameMembership {
		return f, fmt.Errorf("%w: bad header", ErrWire)
	}
	b = b[3:]
	epoch, n := uvarint(b)
	if n == 0 {
		return f, fmt.Errorf("%w: epoch", ErrWire)
	}
	b = b[n:]
	now, n := uvarint(b)
	if n == 0 {
		return f, fmt.Errorf("%w: clock", ErrWire)
	}
	b = b[n:]
	count, n := uvarint(b)
	if n == 0 || count > MaxWireMembers {
		return f, fmt.Errorf("%w: member count", ErrWire)
	}
	b = b[n:]
	members := make([]MemberRecord, 0, count)
	var prev int64 = -1
	for i := uint64(0); i < count; i++ {
		id, n := uvarint(b)
		if n == 0 || id > uint64(^uint32(0)) {
			return f, fmt.Errorf("%w: member id", ErrWire)
		}
		b = b[n:]
		if int64(id) <= prev {
			return f, fmt.Errorf("%w: member ids not ascending", ErrWire)
		}
		prev = int64(id)
		if len(b) < 1 {
			return f, fmt.Errorf("%w: truncated state", ErrWire)
		}
		st := lifecycle.State(b[0])
		if st < lifecycle.StateInitializing || st > lifecycle.StateStopped {
			return f, fmt.Errorf("%w: member state %d", ErrWire, b[0])
		}
		b = b[1:]
		age, n := uvarint(b)
		if n == 0 {
			return f, fmt.Errorf("%w: member age", ErrWire)
		}
		b = b[n:]
		members = append(members, MemberRecord{ID: NodeID(id), State: st, Age: age})
	}
	if len(b) != 0 {
		return f, fmt.Errorf("%w: trailing bytes", ErrWire)
	}
	f.Epoch = epoch
	f.Now = now
	f.Members = members
	return f, nil
}
