package cluster

import (
	"testing"

	"repro/internal/campaign"
)

// TestClusterDifferentialOracle runs the campaign's cluster==pool
// differential oracle on a reduced matrix (the full nodes 1/2/4 ×
// serial/8/32 matrix runs in the campaign smoke): every scenario
// family must produce identical per-request outcomes and survivor
// digests on both sides.
func TestClusterDifferentialOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("differential oracle is not short")
	}
	results, err := campaign.CheckCluster(&Harness{}, 42, 72, []int{1, 2}, []int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("oracle produced no results")
	}
	for _, res := range results {
		if !res.Pass {
			t.Errorf("FAIL %s: %s", res.Scenario, res.Detail)
		}
	}
}
