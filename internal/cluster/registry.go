package cluster

import (
	"context"
	"sort"
	"sync"

	"repro/internal/lifecycle"
)

// DefaultLeaseCycles is the default lease duration in membership
// cycles: a node whose lease has not been renewed for this many cycles
// turns Degraded, and after a grace window of the same length it is
// declared Dead (the Milvus etcd-session analogue: lease expiry deletes
// the session key and the node is considered offline).
const DefaultLeaseCycles = 8

// MemberState is a node's lease-derived health, expressed in the shared
// lifecycle vocabulary: StateHealthy while the lease is fresh,
// StateDegraded once it is stale but within the grace window, and
// StateStopped once it has expired (the node is dead until it
// re-registers with a new session).
type MemberState = lifecycle.State

// Member is one row of a membership snapshot.
type Member struct {
	// ID is the node's identity.
	ID NodeID
	// State is the lease-derived health (Healthy/Degraded/Stopped).
	State MemberState
	// Age is the membership cycles elapsed since the last renewal.
	Age uint64
}

// Registry tracks node registration and lease-based health. Time is the
// membership clock — a counter advanced by Tick (the router ticks it
// once per request arrival), never by wall time — so every state
// transition, and therefore every failover, is a deterministic function
// of the request schedule.
//
// Session semantics follow the Milvus lease pattern: Register opens a
// session, Renew refreshes its lease, a session whose lease goes stale
// degrades and then dies, and a dead id can only come back by
// re-registering (a new session, bumping the membership epoch).
// Registry is safe for concurrent use and implements
// lifecycle.Component (the conformance battery runs against it).
type Registry struct {
	lc *lifecycle.Machine

	mu    sync.Mutex
	lease uint64 // lease duration in cycles (grace window is one more lease)
	now   uint64 // membership clock
	epoch uint64 // bumped on every membership change
	// members holds the live and dead sessions; iteration always goes
	// through sortedIDs for determinism.
	members map[NodeID]*session
}

// session is one node's registration.
type session struct {
	renewedAt uint64
	dead      bool
}

// NewRegistry builds, initializes, and starts a registry with the given
// lease duration in cycles (<= 0 means DefaultLeaseCycles).
func NewRegistry(leaseCycles uint64) *Registry {
	r := NewDeferredRegistry(leaseCycles)
	_ = r.Init()  //lint:errclass fresh machine; Init from StateInitializing cannot fail
	_ = r.Start() //lint:errclass inited machine; Start cannot fail
	return r
}

// NewDeferredRegistry constructs a registry without allocating its
// member table: the lifecycle pattern's cheap construction. Call Init
// and Start before registering nodes.
func NewDeferredRegistry(leaseCycles uint64) *Registry {
	if leaseCycles == 0 {
		leaseCycles = DefaultLeaseCycles
	}
	return &Registry{
		lc:    lifecycle.NewMachine("cluster.Registry"),
		lease: leaseCycles,
	}
}

// Init allocates the member table. Legal exactly once, from
// StateInitializing.
func (r *Registry) Init() error {
	return r.lc.Init(func() error {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.members = make(map[NodeID]*session)
		return nil
	})
}

// Start makes the registry accept registrations. Legal exactly once,
// after Init.
func (r *Registry) Start() error { return r.lc.Start(nil) }

// Drain stops admission of new registrations; existing sessions keep
// renewing (their work is being preserved elsewhere). Idempotent.
func (r *Registry) Drain() error { return r.lc.Drain(nil) }

// Stop tears the registry down, dropping every session. A second Stop
// returns a typed *LifecycleError (use Close for the idempotent form).
func (r *Registry) Stop(ctx context.Context) error {
	_ = ctx
	return r.lc.Stop(r.teardown)
}

// Close is the idempotent form of Stop.
func (r *Registry) Close() error { return r.lc.Close(r.teardown) }

// teardown drops every session.
func (r *Registry) teardown() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.members = nil
	return nil
}

// State returns the registry's lifecycle state.
func (r *Registry) State() lifecycle.State { return r.lc.State() }

// Interface compliance: the registry implements the shared lifecycle
// contract.
var _ lifecycle.Component = (*Registry)(nil)

// LeaseCycles returns the configured lease duration in cycles.
func (r *Registry) LeaseCycles() uint64 { return r.lease }

// serving returns a typed refusal unless the registry accepts
// membership operations (Healthy or Degraded).
func (r *Registry) serving(op string) error {
	s := r.lc.State()
	if s == lifecycle.StateHealthy || s == lifecycle.StateDegraded {
		return nil
	}
	return &lifecycle.LifecycleError{Component: "cluster.Registry", Op: op, From: s}
}

// Register opens (or re-opens, after death) a session for id with a
// fresh lease. Registering an id that already holds a live session is a
// typed *MembershipError; replacing a dead session is the rejoin path
// and bumps the epoch like any membership change.
func (r *Registry) Register(id NodeID) error {
	if err := r.serving("Register"); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.members[id]; ok && !s.dead && r.stateLocked(s) != lifecycle.StateStopped {
		return &MembershipError{Node: id, Op: "Register", Reason: "session already live"}
	}
	r.members[id] = &session{renewedAt: r.now}
	r.epoch++
	return nil
}

// Renew refreshes id's lease. Renewing an expired (dead) or unknown
// session is a typed *MembershipError — the node must re-register.
func (r *Registry) Renew(id NodeID) error {
	if err := r.serving("Renew"); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.members[id]
	if !ok {
		return &MembershipError{Node: id, Op: "Renew", Reason: "unknown node"}
	}
	if s.dead || r.stateLocked(s) == lifecycle.StateStopped {
		s.dead = true
		return &MembershipError{Node: id, Op: "Renew", Reason: "lease expired; re-register"}
	}
	s.renewedAt = r.now
	return nil
}

// Deregister closes id's session gracefully (rolling-restart and drain
// path). Unknown ids are a typed *MembershipError.
func (r *Registry) Deregister(id NodeID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; !ok {
		return &MembershipError{Node: id, Op: "Deregister", Reason: "unknown node"}
	}
	delete(r.members, id)
	r.epoch++
	return nil
}

// Tick advances the membership clock by n cycles. The router calls it
// once per request arrival; tests and failover steps call it directly
// to model quiet time passing.
func (r *Registry) Tick(n uint64) {
	r.mu.Lock()
	r.now += n
	r.mu.Unlock()
}

// Now returns the membership clock.
func (r *Registry) Now() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.now
}

// Epoch returns the membership epoch (bumped on every register,
// deregister, and death).
func (r *Registry) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// stateLocked derives a session's lease state (caller holds mu).
func (r *Registry) stateLocked(s *session) MemberState {
	if s.dead {
		return lifecycle.StateStopped
	}
	age := r.now - s.renewedAt
	switch {
	case age <= r.lease:
		return lifecycle.StateHealthy
	case age <= 2*r.lease:
		return lifecycle.StateDegraded
	default:
		return lifecycle.StateStopped
	}
}

// MemberState returns id's lease-derived health; unknown ids report
// StateStopped (an unregistered node is indistinguishable from a dead
// one, as with a deleted etcd session key).
func (r *Registry) MemberState(id NodeID) MemberState {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.members[id]
	if !ok {
		return lifecycle.StateStopped
	}
	return r.stateLocked(s)
}

// Sweep pins newly expired sessions as dead and returns their ids in
// ascending order, bumping the epoch once if any died. The router calls
// it after ticking to trigger handoff for every node whose lease ran
// out.
func (r *Registry) Sweep() []NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	var died []NodeID
	for _, id := range r.sortedIDsLocked() {
		s := r.members[id]
		if !s.dead && r.stateLocked(s) == lifecycle.StateStopped {
			s.dead = true
			died = append(died, id)
		}
	}
	if len(died) > 0 {
		r.epoch++
	}
	return died
}

// Snapshot returns the membership in ascending id order.
func (r *Registry) Snapshot() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Member, 0, len(r.members))
	for _, id := range r.sortedIDsLocked() {
		s := r.members[id]
		out = append(out, Member{ID: id, State: r.stateLocked(s), Age: r.now - s.renewedAt})
	}
	return out
}

// Live returns the ids whose sessions are serving (Healthy or
// Degraded), ascending.
func (r *Registry) Live() []NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []NodeID
	for _, id := range r.sortedIDsLocked() {
		st := r.stateLocked(r.members[id])
		if st == lifecycle.StateHealthy || st == lifecycle.StateDegraded {
			out = append(out, id)
		}
	}
	return out
}

// sortedIDsLocked collects member ids in ascending order (caller holds
// mu) — the deterministic-iteration idiom for the member map.
func (r *Registry) sortedIDsLocked() []NodeID {
	ids := make([]NodeID, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
