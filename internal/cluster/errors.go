package cluster

import (
	"errors"
	"fmt"

	"repro/internal/gateway"
)

// This file defines the cluster tier's typed-error vocabulary, in the
// gateway's style: every routing refusal is a distinct type a caller
// can classify with a comma-ok helper (errclass lint invariant), and
// retry hints are quantized virtual-cycle quantities so rejection
// bytes are identical across runs and hosts.

// unavailableRetryCyclesPerLease is the per-lease-cycle cost estimate
// behind an UnavailableError's retry hint: one membership cycle is one
// request arrival, which the servers model at ~100µs of virtual time.
const unavailableRetryCyclesPerLease = 300_000

// UnavailableError reports that a request's slot has no live primary:
// its owner is crashed or partitioned and lease-based failure
// detection (and, with replicas, handoff) has not yet produced a new
// owner. The request was NOT executed — an unavailable nack is a
// promise that no server-side state changed.
type UnavailableError struct {
	// Slot is the virtual slot the request's key hashed to.
	Slot int
	// Node is the unreachable owner.
	Node NodeID
	// Reason describes why the owner is unreachable ("crashed",
	// "partitioned", "no live replica", ...).
	Reason string
	// RetryCycles is the quantized virtual-cycle retry hint — the
	// remaining lease window before failover can promote a replica.
	RetryCycles uint64
}

// Error implements error.
func (e *UnavailableError) Error() string {
	return fmt.Sprintf("cluster: slot %d unavailable (node %d %s) retry-after-cycles=%d",
		e.Slot, e.Node, e.Reason, e.RetryCycles)
}

// IsUnavailable reports whether err is (or wraps) an
// *UnavailableError, returning it.
func IsUnavailable(err error) (*UnavailableError, bool) {
	var u *UnavailableError
	if errors.As(err, &u) {
		return u, true
	}
	return nil, false
}

// newUnavailable builds the typed refusal with its quantized hint.
func newUnavailable(slot int, node NodeID, reason string, leaseCyclesLeft uint64) *UnavailableError {
	return &UnavailableError{
		Slot:        slot,
		Node:        node,
		Reason:      reason,
		RetryCycles: gateway.QuantizeRetryCycles(leaseCyclesLeft * unavailableRetryCyclesPerLease),
	}
}

// MembershipError reports an illegal registry operation: registering an
// id that already holds a live session, renewing an expired lease, or
// addressing an unknown node.
type MembershipError struct {
	// Node is the id the operation addressed.
	Node NodeID
	// Op is the refused operation ("Register", "Renew", ...).
	Op string
	// Reason explains the refusal.
	Reason string
}

// Error implements error.
func (e *MembershipError) Error() string {
	return fmt.Sprintf("cluster: %s node %d: %s", e.Op, e.Node, e.Reason)
}

// IsMembership reports whether err is (or wraps) a *MembershipError,
// returning it.
func IsMembership(err error) (*MembershipError, bool) {
	var m *MembershipError
	if errors.As(err, &m) {
		return m, true
	}
	return nil, false
}
