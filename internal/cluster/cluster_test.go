package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/lifecycle"
	"repro/internal/workload"
)

func testRouter(t *testing.T, nodes, replicas int, readReplicas bool) *Router {
	t.Helper()
	r, err := NewRouter(RouterConfig{
		Nodes:    nodes,
		Replicas: replicas,
		Sys:      core.DefaultConfig(),
		Server: kvstore.ServerConfig{
			Mode:         kvstore.ModeSDRaD,
			Workers:      2,
			InterArrival: time.Nanosecond,
		},
		Capacity:     32 << 20,
		ReadReplicas: readReplicas,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

func setKey(t *testing.T, r *Router, key, val string) {
	t.Helper()
	resp := r.HandleContext(context.Background(), 0, workload.Request{Op: workload.OpSet, Key: key, Value: []byte(val)})
	if resp.Err != nil || !resp.OK {
		t.Fatalf("set %q: ok=%v err=%v", key, resp.OK, resp.Err)
	}
}

func getKey(r *Router, key string) kvstore.Response {
	return r.HandleContext(context.Background(), 0, workload.Request{Op: workload.OpGet, Key: key})
}

// keyOwnedBy finds a key whose slot is primaried by the given node.
func keyOwnedBy(t *testing.T, r *Router, id NodeID) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		k := fmt.Sprintf("key-%08d", i)
		if owner, ok := r.Owner(k); ok && owner == id {
			return k
		}
	}
	t.Fatalf("no key primaried by node %d", id)
	return ""
}

// TestRegistryLeaseTransitions walks a session through the lease state
// machine: Healthy within the lease, Degraded in the grace window,
// Dead beyond it, and rejoin-only-by-reregistering afterwards.
func TestRegistryLeaseTransitions(t *testing.T) {
	r := NewRegistry(4)
	defer r.Close()
	if err := r.Register(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(0); err == nil {
		t.Fatal("re-registering a live session succeeded")
	} else if _, ok := IsMembership(err); !ok {
		t.Fatalf("re-register error = %T, want *MembershipError", err)
	}
	epoch := r.Epoch()

	r.Tick(4)
	if st := r.MemberState(0); st != lifecycle.StateHealthy {
		t.Fatalf("age=lease state = %v, want Healthy", st)
	}
	r.Tick(1)
	if st := r.MemberState(0); st != lifecycle.StateDegraded {
		t.Fatalf("age=lease+1 state = %v, want Degraded", st)
	}
	if err := r.Renew(0); err != nil {
		t.Fatal(err)
	}
	if st := r.MemberState(0); st != lifecycle.StateHealthy {
		t.Fatalf("renewed state = %v, want Healthy", st)
	}

	r.Tick(4) // node 1's age is now 9 > 2*lease
	if st := r.MemberState(1); st != lifecycle.StateStopped {
		t.Fatalf("expired state = %v, want Stopped", st)
	}
	died := r.Sweep()
	if len(died) != 1 || died[0] != 1 {
		t.Fatalf("Sweep = %v, want [1]", died)
	}
	if r.Epoch() == epoch {
		t.Fatal("death did not bump the epoch")
	}
	if err := r.Renew(1); err == nil {
		t.Fatal("renewing a dead session succeeded")
	}
	if err := r.Register(1); err != nil {
		t.Fatalf("rejoin after death: %v", err)
	}
	if st := r.MemberState(1); st != lifecycle.StateHealthy {
		t.Fatalf("rejoined state = %v, want Healthy", st)
	}
	if err := r.Deregister(0); err != nil {
		t.Fatal(err)
	}
	if st := r.MemberState(0); st != lifecycle.StateStopped {
		t.Fatalf("deregistered state = %v, want Stopped", st)
	}
}

// TestPlacementDeterministicMinimalReshuffle checks the rendezvous
// ranking: stable across calls, identity-stable across leave/rejoin,
// and removing one node moves only that node's slots.
func TestPlacementDeterministicMinimalReshuffle(t *testing.T) {
	all := []NodeID{0, 1, 2, 3}
	without2 := []NodeID{0, 1, 3}
	moved := 0
	for slot := 0; slot < NumSlots; slot++ {
		a := RankNodes(slot, all)
		b := RankNodes(slot, all)
		if len(a) != len(all) {
			t.Fatalf("slot %d: ranked %d of %d nodes", slot, len(a), len(all))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("slot %d: ranking not deterministic: %v vs %v", slot, a, b)
			}
		}
		c := RankNodes(slot, without2)
		if a[0] != 2 {
			if c[0] != a[0] {
				t.Errorf("slot %d: primary moved %d -> %d though node 2 did not own it", slot, a[0], c[0])
			}
		} else {
			moved++
			if c[0] != a[1] {
				t.Errorf("slot %d: expected promotion of rank-1 %d, got %d", slot, a[1], c[0])
			}
		}
		// Rejoin: the original ranking is a pure function of identity.
		d := RankNodes(slot, all)
		if d[0] != a[0] {
			t.Errorf("slot %d: rejoin did not restore primary %d (got %d)", slot, a[0], d[0])
		}
	}
	if moved == 0 {
		t.Fatal("node 2 owned no slots; weight function is degenerate")
	}
	if moved == NumSlots {
		t.Fatal("node 2 owned every slot; weight function is degenerate")
	}
}

// TestClusterCrashFailoverLossless seeds data across a replicated
// cluster, crash-kills a node, and asserts the surviving placement
// serves every key with its exact value (synchronous replica promotion
// is lossless), then rejoins the node and checks again.
func TestClusterCrashFailoverLossless(t *testing.T) {
	r := testRouter(t, 3, 1, false)
	want := make(map[string]string)
	for i := 0; i < 150; i++ {
		k := fmt.Sprintf("key-%08d", i)
		v := fmt.Sprintf("value-%d", i)
		setKey(t, r, k, v)
		want[k] = v
	}
	epoch := r.Epoch()
	if err := r.FailNode(1); err != nil {
		t.Fatal(err)
	}
	if r.Handoffs() == 0 {
		t.Fatal("crash triggered no handoffs")
	}
	if r.Epoch() == epoch {
		t.Fatal("crash did not bump the membership epoch")
	}
	for k, v := range want {
		resp := getKey(r, k)
		if resp.Err != nil || !resp.OK || !bytes.Equal(resp.Value, []byte(v)) {
			t.Fatalf("after crash, get %q = ok=%v err=%v val=%q, want %q", k, resp.OK, resp.Err, resp.Value, v)
		}
	}
	if err := r.JoinNode(1); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		resp := getKey(r, k)
		if resp.Err != nil || !resp.OK || !bytes.Equal(resp.Value, []byte(v)) {
			t.Fatalf("after rejoin, get %q = ok=%v err=%v, want %q", k, resp.OK, resp.Err, v)
		}
	}
}

// TestClusterRollingRestartLossless retires and rejoins every node in
// turn with zero replicas: the graceful handoff itself must carry
// every byte.
func TestClusterRollingRestartLossless(t *testing.T) {
	r := testRouter(t, 3, 0, false)
	want := make(map[string]string)
	for i := 0; i < 120; i++ {
		k := fmt.Sprintf("key-%08d", i)
		v := fmt.Sprintf("value-%d", i)
		setKey(t, r, k, v)
		want[k] = v
	}
	for id := NodeID(0); id < 3; id++ {
		if err := r.RetireNode(id); err != nil {
			t.Fatalf("retire %d: %v", id, err)
		}
		if err := r.JoinNode(id); err != nil {
			t.Fatalf("rejoin %d: %v", id, err)
		}
	}
	if r.Handoffs() == 0 {
		t.Fatal("rolling restart triggered no handoffs")
	}
	for k, v := range want {
		resp := getKey(r, k)
		if resp.Err != nil || !resp.OK || !bytes.Equal(resp.Value, []byte(v)) {
			t.Fatalf("after rolling restart, get %q = ok=%v err=%v, want %q", k, resp.OK, resp.Err, v)
		}
	}
}

// TestClusterPartitionNackAndHealResync checks the partition window's
// contract: requests owned by the partitioned node nack with a typed
// *UnavailableError (never executed), other slots keep serving, and
// heal resyncs the node — including reconciling a delete it missed, so
// a later failover cannot resurrect the key.
func TestClusterPartitionNackAndHealResync(t *testing.T) {
	r := testRouter(t, 2, 1, false)
	k0 := keyOwnedBy(t, r, 0)
	k1 := keyOwnedBy(t, r, 1)
	setKey(t, r, k0, "zero")
	setKey(t, r, k1, "one")

	if err := r.PartitionNode(0); err != nil {
		t.Fatal(err)
	}
	resp := getKey(r, k0)
	u, ok := IsUnavailable(resp.Err)
	if !ok {
		t.Fatalf("partitioned owner's key: err = %v, want *UnavailableError", resp.Err)
	}
	if u.Node != 0 || u.RetryCycles == 0 {
		t.Fatalf("unavailable = %+v, want node 0 with a retry hint", u)
	}
	wresp := r.HandleContext(context.Background(), 0, workload.Request{Op: workload.OpSet, Key: k0, Value: []byte("lost?")})
	if _, ok := IsUnavailable(wresp.Err); !ok {
		t.Fatalf("partitioned owner's write: err = %v, want *UnavailableError", wresp.Err)
	}
	if resp := getKey(r, k1); resp.Err != nil || !resp.OK {
		t.Fatalf("healthy owner's key failed during partition: ok=%v err=%v", resp.OK, resp.Err)
	}

	// Node 1's slot mutates while node 0 (its replica) is unreachable:
	// the delete must not survive on node 0's stale copy.
	delResp := r.HandleContext(context.Background(), 0, workload.Request{Op: workload.OpDelete, Key: k1})
	if delResp.Err != nil || !delResp.OK {
		t.Fatalf("delete during partition: ok=%v err=%v", delResp.OK, delResp.Err)
	}

	if err := r.HealNode(0); err != nil {
		t.Fatal(err)
	}
	if resp := getKey(r, k0); resp.Err != nil || !resp.OK || !bytes.Equal(resp.Value, []byte("zero")) {
		t.Fatalf("after heal, get %q = ok=%v err=%v val=%q", k0, resp.OK, resp.Err, resp.Value)
	}
	if r.Unavailable() == 0 {
		t.Fatal("partition window nacked nothing")
	}
	// Promote node 0 over node 1's slots: the missed delete must stay
	// deleted.
	if err := r.FailNode(1); err != nil {
		t.Fatal(err)
	}
	if resp := getKey(r, k1); resp.Err != nil || resp.OK {
		t.Fatalf("deleted key resurrected after failover: ok=%v err=%v val=%q", resp.OK, resp.Err, resp.Value)
	}
}

// TestClusterScanMergesAcrossNodes checks the cluster scan: pages
// merge across nodes in sorted order, replica copies deduplicate, and
// the cursor walks the whole table exactly once.
func TestClusterScanMergesAcrossNodes(t *testing.T) {
	r := testRouter(t, 3, 1, false)
	want := make(map[string]bool)
	for i := 0; i < 90; i++ {
		k := fmt.Sprintf("key-%08d", i)
		setKey(t, r, k, "v")
		want[k] = true
	}
	got := make(map[string]bool)
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 30 {
			t.Fatal("scan did not terminate")
		}
		res, err := r.Scan("key-", cursor, 16)
		if err != nil {
			t.Fatal(err)
		}
		for i, it := range res.Items {
			if got[it.Key] {
				t.Fatalf("key %q returned twice", it.Key)
			}
			if i > 0 && res.Items[i-1].Key >= it.Key {
				t.Fatalf("page out of order: %q >= %q", res.Items[i-1].Key, it.Key)
			}
			got[it.Key] = true
		}
		if res.Cursor == "" {
			break
		}
		cursor = res.Cursor
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
}

// TestClusterChurnDispatchHammer is the -race hammer: sustained
// concurrent dispatch of unique-key SETs while a churn goroutine
// crash-kills and rejoins a node. The membership lock's contract is
// asserted exactly: every acked key is present with its value, every
// nacked key is absent, and submitted == acked + nacked (no request
// double-executed or silently dropped).
func TestClusterChurnDispatchHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer is not short")
	}
	// Replicas = 2 of 3 nodes: every slot survives any single-node
	// crash, so an acked write can never be lost mid-churn.
	r := testRouter(t, 3, 2, false)
	const workers = 4
	const perWorker = 250

	type record struct {
		key   string
		acked bool
	}
	results := make([][]record, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		results[w] = make([]record, 0, perWorker)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("hammer-w%02d-%06d", w, i)
				resp := r.HandleContext(ctx, w, workload.Request{
					Op: workload.OpSet, Key: key, Value: []byte(key),
				})
				switch {
				case resp.Err == nil && resp.OK:
					results[w] = append(results[w], record{key, true})
				default:
					if _, ok := IsUnavailable(resp.Err); !ok {
						t.Errorf("set %q: unexpected failure ok=%v err=%v", key, resp.OK, resp.Err)
						return
					}
					results[w] = append(results[w], record{key, false})
				}
			}
		}(w)
	}
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for c := 0; c < 8; c++ {
			if err := r.FailNode(1); err != nil {
				t.Errorf("churn %d fail: %v", c, err)
				return
			}
			if err := r.JoinNode(1); err != nil {
				t.Errorf("churn %d join: %v", c, err)
				return
			}
			if err := r.PartitionNode(2); err != nil {
				t.Errorf("churn %d partition: %v", c, err)
				return
			}
			if err := r.HealNode(2); err != nil {
				t.Errorf("churn %d heal: %v", c, err)
				return
			}
		}
	}()
	wg.Wait()
	<-churnDone
	if t.Failed() {
		return
	}

	state, err := r.Dump()
	if err != nil {
		t.Fatal(err)
	}
	acked, nacked := 0, 0
	for w := range results {
		for _, rec := range results[w] {
			if rec.acked {
				acked++
				v, ok := state[rec.key]
				if !ok {
					t.Fatalf("acked key %q missing from survivor state", rec.key)
				}
				if !bytes.Equal(v, []byte(rec.key)) {
					t.Fatalf("acked key %q has value %q, want %q", rec.key, v, rec.key)
				}
			} else {
				nacked++
				if _, ok := state[rec.key]; ok {
					t.Fatalf("nacked key %q was executed anyway", rec.key)
				}
			}
		}
	}
	if acked+nacked != workers*perWorker {
		t.Fatalf("submitted %d, accounted %d acked + %d nacked", workers*perWorker, acked, nacked)
	}
	if acked == 0 {
		t.Fatal("hammer acked nothing; scenario checks nothing")
	}
}
