package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/lifecycle"
	"repro/internal/workload"
)

// RouterConfig configures a cluster router and the node fleet it owns.
type RouterConfig struct {
	// Nodes is the initial node count (<= 0 means 1). Node ids are
	// 0..Nodes-1 and stay stable across crash/rejoin.
	Nodes int
	// Replicas is the number of extra copies each slot keeps beyond its
	// primary (clamped to Nodes-1). With Replicas >= 1, node-crash
	// handoff is lossless: a synchronously written replica is promoted.
	Replicas int
	// LeaseCycles is the membership lease duration in arrival-counted
	// cycles (0 means DefaultLeaseCycles).
	LeaseCycles uint64
	// Sys configures each node's simulated machines.
	Sys core.Config
	// Server configures each node's kvstore servers.
	Server kvstore.ServerConfig
	// ShardsPerNode is each node's local shard count (<= 0 means 1).
	ShardsPerNode int
	// Capacity is each node's cache capacity in bytes (0 means the node
	// default, 64 MiB).
	Capacity uint64
	// ReadReplicas routes single-request GETs across a slot's holders
	// round-robin instead of pinning them to the primary. Sound because
	// replica writes are synchronous: an acked mutation is on every
	// reachable holder before the ack returns.
	ReadReplicas bool
}

// Router is the cluster tier's front door: it owns a fleet of Nodes and
// a lease Registry, places keys on nodes by rendezvous hashing over
// NumSlots virtual slots, replicates acked mutations synchronously to
// each slot's replica holders, and re-routes (with state handoff) when
// membership changes.
//
// Concurrency contract: dispatch (route + primary execution + replica
// application) runs under a read lock; membership events (FailNode,
// JoinNode, PartitionNode, HealNode, RetireNode) take the write lock.
// A request therefore never interleaves with a membership change — an
// acked request is fully replicated under the placement it was routed
// with, and a nacked request was never executed anywhere. The churn
// hammer test asserts exactly this invariant.
//
// Router implements lifecycle.Component with deferred construction (the
// conformance battery runs against it).
type Router struct {
	lc  *lifecycle.Machine
	cfg RouterConfig

	mu          sync.RWMutex
	reg         *Registry
	nodes       map[NodeID]*Node
	partitioned map[NodeID]bool
	leaving     map[NodeID]bool
	// assign maps each slot to its holders, primary first, recomputed on
	// every membership change.
	assign [NumSlots][]NodeID

	handoffs    atomic.Uint64
	dispatched  atomic.Uint64
	unavailable atomic.Uint64
}

// NewRouter builds, initializes, and starts a router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	r := NewDeferredRouter(cfg)
	if err := r.Init(); err != nil {
		return nil, err
	}
	if err := r.Start(); err != nil {
		return nil, err
	}
	return r, nil
}

// NewDeferredRouter constructs a router without allocating its registry
// or nodes: the lifecycle pattern's cheap construction. Call Init and
// Start before dispatching.
func NewDeferredRouter(cfg RouterConfig) *Router {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Replicas < 0 {
		cfg.Replicas = 0
	}
	if cfg.Replicas > cfg.Nodes-1 {
		cfg.Replicas = cfg.Nodes - 1
	}
	if cfg.LeaseCycles == 0 {
		cfg.LeaseCycles = DefaultLeaseCycles
	}
	if cfg.ShardsPerNode <= 0 {
		cfg.ShardsPerNode = 1
	}
	return &Router{
		lc:  lifecycle.NewMachine("cluster.Router"),
		cfg: cfg,
	}
}

// Init builds the registry and the node fleet. Legal exactly once, from
// StateInitializing.
func (r *Router) Init() error {
	return r.lc.Init(func() error {
		r.mu.Lock()
		defer r.mu.Unlock()
		reg := NewDeferredRegistry(r.cfg.LeaseCycles)
		if err := reg.Init(); err != nil {
			return err
		}
		if err := reg.Start(); err != nil {
			return err
		}
		r.reg = reg
		r.nodes = make(map[NodeID]*Node, r.cfg.Nodes)
		r.partitioned = make(map[NodeID]bool)
		r.leaving = make(map[NodeID]bool)
		for i := 0; i < r.cfg.Nodes; i++ {
			n := r.newNodeLocked(NodeID(i))
			if err := n.Init(); err != nil {
				return err
			}
			r.nodes[n.ID()] = n
		}
		return nil
	})
}

// newNodeLocked builds (without initializing) a node from the router's
// config (caller holds mu).
func (r *Router) newNodeLocked(id NodeID) *Node {
	return NewNode(NodeConfig{
		ID:       id,
		Sys:      r.cfg.Sys,
		Server:   r.cfg.Server,
		Shards:   r.cfg.ShardsPerNode,
		Capacity: r.cfg.Capacity,
		Registry: r.reg,
	})
}

// Start opens every node's registry session and computes the initial
// placement. Legal exactly once, after Init.
func (r *Router) Start() error {
	return r.lc.Start(func() error {
		r.mu.Lock()
		defer r.mu.Unlock()
		for _, id := range r.sortedNodeIDsLocked() {
			if err := r.nodes[id].Start(); err != nil {
				return err
			}
		}
		return r.rebalanceLocked()
	})
}

// Drain stops admission gracefully: every node drains (preserving
// queued work and committing final WAL groups on durable nodes), then
// the registry drains. Idempotent.
func (r *Router) Drain() error {
	return r.lc.Drain(func() error {
		r.mu.Lock()
		defer r.mu.Unlock()
		for _, id := range r.sortedNodeIDsLocked() {
			if err := r.nodes[id].Drain(); err != nil {
				return err
			}
		}
		return r.reg.Drain()
	})
}

// Stop tears the cluster down. A second Stop returns a typed
// *LifecycleError (use Close for the idempotent form).
func (r *Router) Stop(ctx context.Context) error {
	_ = ctx
	return r.lc.Stop(r.teardown)
}

// Close is the idempotent form of Stop.
func (r *Router) Close() error { return r.lc.Close(r.teardown) }

// teardown closes every node and the registry.
func (r *Router) teardown() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, id := range r.sortedNodeIDsLocked() {
		if err := r.nodes[id].Close(); err != nil && first == nil {
			first = err
		}
	}
	r.nodes = nil
	if r.reg != nil {
		if err := r.reg.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// State returns the router's lifecycle state.
func (r *Router) State() lifecycle.State { return r.lc.State() }

// Interface compliance: the router implements the shared lifecycle
// contract.
var _ lifecycle.Component = (*Router)(nil)

// serving returns a typed refusal unless the router is dispatching.
func (r *Router) serving(op string) error {
	s := r.lc.State()
	if s == lifecycle.StateHealthy || s == lifecycle.StateDegraded {
		return nil
	}
	return &lifecycle.LifecycleError{Component: "cluster.Router", Op: op, From: s}
}

// sortedNodeIDsLocked collects node ids in ascending order (caller
// holds mu) — the deterministic-iteration idiom for the node map.
func (r *Router) sortedNodeIDsLocked() []NodeID {
	ids := make([]NodeID, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// availableLocked returns the ids eligible to hold slots: members of
// the fleet that are neither partitioned nor leaving, ascending.
func (r *Router) availableLocked() []NodeID {
	var out []NodeID
	for _, id := range r.sortedNodeIDsLocked() {
		if !r.partitioned[id] && !r.leaving[id] {
			out = append(out, id)
		}
	}
	return out
}

// heartbeatLocked renews the lease of every reachable node (caller
// holds mu or a read lock; the registry has its own mutex). A node that
// fell out of the registry (its session died while it was reachable,
// which only happens across an explicit membership event) re-registers.
func (r *Router) heartbeatLocked() {
	for _, id := range r.sortedNodeIDsLocked() {
		if r.partitioned[id] {
			continue
		}
		if err := r.nodes[id].Heartbeat(); err != nil {
			if _, ok := IsMembership(err); ok {
				_ = r.reg.Register(id) //lint:errclass reachable node rejoins over its dead session; Register over a dead session cannot fail
			}
		}
	}
}

// tickLocked advances the membership clock by n arrivals, heartbeats
// every reachable node, and pins any session whose lease ran out (a
// partitioned node stops heartbeating, so its lease ages here —
// Healthy, then Degraded, then Dead — exactly as arrivals accumulate).
func (r *Router) tickLocked(n uint64) {
	r.reg.Tick(n)
	r.heartbeatLocked()
	_ = r.reg.Sweep()
}

// routeLocked resolves key to its slot and target holders, returning a
// typed UnavailableError when the slot has no reachable primary.
func (r *Router) routeLocked(key string) (slot int, holders []NodeID, err error) {
	slot = KeySlot(key)
	holders = r.assign[slot]
	if len(holders) == 0 {
		return slot, nil, newUnavailable(slot, -1, "no live holders", 2*r.reg.LeaseCycles())
	}
	primary := holders[0]
	if r.partitioned[primary] {
		return slot, nil, newUnavailable(slot, primary, "partitioned", 2*r.reg.LeaseCycles())
	}
	if _, ok := r.nodes[primary]; !ok {
		return slot, nil, newUnavailable(slot, primary, "crashed", 2*r.reg.LeaseCycles())
	}
	return slot, holders, nil
}

// readTargetLocked picks the node that serves a GET: the primary, or —
// with ReadReplicas — a deterministic rotation over the slot's
// reachable holders (sound because replica writes are synchronous).
func (r *Router) readTargetLocked(holders []NodeID, seq uint64) NodeID {
	if !r.cfg.ReadReplicas || len(holders) < 2 {
		return holders[0]
	}
	var reachable []NodeID
	for _, id := range holders {
		if _, ok := r.nodes[id]; ok && !r.partitioned[id] {
			reachable = append(reachable, id)
		}
	}
	if len(reachable) == 0 {
		return holders[0]
	}
	return reachable[int(seq%uint64(len(reachable)))]
}

// replicateLocked applies an acknowledged mutation to the slot's
// replica holders (trusted-side log shipping; see Node.Apply). An
// unreachable replica is skipped — HealNode resyncs it before it can
// serve again. A reachable replica that refuses the apply leaves that
// replica behind the primary; the router degrades itself so the
// inconsistency is visible, and the next rebalance resync repairs it.
func (r *Router) replicateLocked(holders []NodeID, req workload.Request) {
	for _, id := range holders[1:] {
		n, ok := r.nodes[id]
		if !ok || r.partitioned[id] {
			continue
		}
		if err := n.Apply(req); err != nil {
			r.lc.Degrade() //lint:errclass replica apply refusal degrades the router; rebalance resync repairs the replica
		}
	}
}

// HandleContext serves one request: it advances the membership clock by
// one arrival, routes the key through the wire codec to its slot's
// primary (or a read replica for GETs when enabled), executes there,
// and synchronously replicates an acknowledged mutation to the slot's
// remaining holders before returning the ack. A request whose slot has
// no reachable primary gets a typed *UnavailableError in Response.Err
// and was not executed anywhere.
func (r *Router) HandleContext(ctx context.Context, clientID int, req workload.Request) kvstore.Response {
	if err := r.serving("HandleContext"); err != nil {
		return kvstore.Response{Err: err}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.tickLocked(1)
	f, err := DecodeRequest(EncodeRequest(clientID, req))
	if err != nil {
		return kvstore.Response{Err: err}
	}
	_, holders, err := r.routeLocked(f.Req.Key)
	if err != nil {
		r.unavailable.Add(1)
		return kvstore.Response{Err: err}
	}
	seq := r.dispatched.Add(1)
	target := holders[0]
	if f.Req.Op == workload.OpGet {
		target = r.readTargetLocked(holders, seq)
	}
	resp := r.nodes[target].HandleContext(ctx, f.ClientID, f.Req)
	if f.Req.Op != workload.OpGet && resp.OK && resp.Err == nil && !resp.Contained {
		r.replicateLocked(holders, f.Req)
	}
	return resp
}

// HandleBatch serves a wave of requests: the membership clock advances
// by the wave's arrival count, each request routes through the wire
// codec to its slot's primary, per-node sub-batches execute as
// pipelined units (preserving every key's arrival order, since a key
// maps to one slot and a slot to one primary), and acknowledged
// mutations replicate to their slots' remaining holders in arrival
// order before the wave returns. Unroutable requests get typed
// *UnavailableError responses and are not executed.
func (r *Router) HandleBatch(batch []kvstore.BatchRequest) []kvstore.Response {
	out := make([]kvstore.Response, len(batch))
	if len(batch) == 0 {
		return out
	}
	if err := r.serving("HandleBatch"); err != nil {
		for i := range out {
			out[i] = kvstore.Response{Err: err}
		}
		return out
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.tickLocked(uint64(len(batch)))
	frames := make([]RequestFrame, len(batch))
	routed := make([][]NodeID, len(batch))
	groups := make(map[NodeID][]int)
	for i, br := range batch {
		f, err := DecodeRequest(EncodeRequest(br.ClientID, br.Req))
		if err != nil {
			out[i] = kvstore.Response{Err: err}
			continue
		}
		frames[i] = f
		_, holders, err := r.routeLocked(f.Req.Key)
		if err != nil {
			r.unavailable.Add(1)
			out[i] = kvstore.Response{Err: err}
			continue
		}
		routed[i] = holders
		groups[holders[0]] = append(groups[holders[0]], i)
	}
	gids := make([]NodeID, 0, len(groups))
	for id := range groups {
		gids = append(gids, id)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, id := range gids {
		idxs := groups[id]
		sub := make([]kvstore.BatchRequest, len(idxs))
		for k, i := range idxs {
			sub[k] = kvstore.BatchRequest{
				Ctx:      batch[i].Ctx,
				ClientID: frames[i].ClientID,
				Req:      frames[i].Req,
			}
		}
		for k, resp := range r.nodes[id].HandleBatch(sub) {
			out[idxs[k]] = resp
		}
	}
	r.dispatched.Add(uint64(len(batch)))
	for i := range batch {
		if routed[i] == nil || frames[i].Req.Op == workload.OpGet {
			continue
		}
		if out[i].OK && out[i].Err == nil && !out[i].Contained {
			r.replicateLocked(routed[i], frames[i].Req)
		}
	}
	return out
}

// FailNode crash-kills a node: its process state vanishes, its lease
// stops renewing, and — after the lease plus grace window of arrivals
// elapses with the survivors still heartbeating — the registry sweeps
// it dead and the router fails its slots over to the surviving holders
// (lossless when Replicas >= 1, because every acked mutation was
// synchronously applied to the promoted replica before its ack).
func (r *Router) FailNode(id NodeID) error {
	if err := r.serving("FailNode"); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[id]
	if !ok {
		return &MembershipError{Node: id, Op: "FailNode", Reason: "unknown node"}
	}
	delete(r.nodes, id)
	delete(r.partitioned, id)
	_ = n.Close() //lint:errclass crash semantics: the process is gone; release host resources and ignore the refusal
	r.expireLocked()
	return r.rebalanceLocked()
}

// expireLocked advances the membership clock through the crashed
// node's lease and grace windows while every surviving reachable node
// keeps heartbeating, then sweeps — the deterministic model of "the
// fleet kept serving until failure detection fired" (caller holds mu).
func (r *Router) expireLocked() {
	lease := r.reg.LeaseCycles()
	for i := 0; i < 2; i++ {
		r.reg.Tick(lease)
		r.heartbeatLocked()
	}
	r.reg.Tick(1)
	r.heartbeatLocked()
	_ = r.reg.Sweep()
}

// PartitionNode makes a node unreachable without killing it: its lease
// silently ages toward Dead as arrivals accumulate, requests whose
// slots it owns get typed unavailable nacks (never executed), and
// replica writes skip it. HealNode reverses this.
func (r *Router) PartitionNode(id NodeID) error {
	if err := r.serving("PartitionNode"); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[id]; !ok {
		return &MembershipError{Node: id, Op: "PartitionNode", Reason: "unknown node"}
	}
	if r.partitioned[id] {
		return &MembershipError{Node: id, Op: "PartitionNode", Reason: "already partitioned"}
	}
	r.partitioned[id] = true
	return nil
}

// HealNode reconnects a partitioned node: its session renews (or
// re-registers, if the lease expired during the partition), and the
// node is resynced from its slots' primaries before it can serve
// again — replica writes skipped it while it was unreachable, and a
// mutation stream may have deleted keys it still holds.
func (r *Router) HealNode(id NodeID) error {
	if err := r.serving("HealNode"); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[id]; !ok {
		return &MembershipError{Node: id, Op: "HealNode", Reason: "unknown node"}
	}
	if !r.partitioned[id] {
		return &MembershipError{Node: id, Op: "HealNode", Reason: "not partitioned"}
	}
	delete(r.partitioned, id)
	if err := r.reg.Renew(id); err != nil {
		_ = r.reg.Register(id) //lint:errclass the lease expired during the partition; Register over a dead session cannot fail
	}
	if err := r.rebalanceLocked(); err != nil {
		return err
	}
	return r.resyncNodeLocked(id)
}

// RetireNode removes a node gracefully (the rolling-restart step): its
// slots hand off to the surviving holders while it is still alive —
// the data flows out of the retiring node itself, so a graceful retire
// is lossless at any replica count — then it drains and stops.
func (r *Router) RetireNode(id NodeID) error {
	if err := r.serving("RetireNode"); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[id]
	if !ok {
		return &MembershipError{Node: id, Op: "RetireNode", Reason: "unknown node"}
	}
	if r.partitioned[id] {
		return &MembershipError{Node: id, Op: "RetireNode", Reason: "partitioned; heal before retiring"}
	}
	r.leaving[id] = true
	if err := r.rebalanceLocked(); err != nil {
		delete(r.leaving, id)
		return err
	}
	delete(r.leaving, id)
	delete(r.nodes, id)
	if err := n.Drain(); err != nil {
		return err
	}
	return n.Close()
}

// JoinNode adds (or re-adds, after a crash) a node with the given id:
// a fresh process registers a new session, rendezvous placement hands
// its slots back (identity-stable weights mean a rejoining node
// reclaims exactly the slots it owned), and the handoff syncs copy
// those slots' current state into it before it serves.
func (r *Router) JoinNode(id NodeID) error {
	if err := r.serving("JoinNode"); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[id]; ok {
		return &MembershipError{Node: id, Op: "JoinNode", Reason: "already a member"}
	}
	n := r.newNodeLocked(id)
	if err := n.Init(); err != nil {
		return err
	}
	if err := n.Start(); err != nil {
		return err
	}
	r.nodes[id] = n
	return r.rebalanceLocked()
}

// rebalanceLocked recomputes the slot assignment from the available
// fleet and performs handoff syncs: every node newly holding a slot
// receives that slot's state from a surviving previous holder before
// the new placement takes effect. Primary moves count as handoffs
// (caller holds mu).
func (r *Router) rebalanceLocked() error {
	avail := r.availableLocked()
	want := 1 + r.cfg.Replicas
	dumps := make(map[NodeID]map[string][]byte)
	var next [NumSlots][]NodeID
	for slot := 0; slot < NumSlots; slot++ {
		ranks := RankNodes(slot, avail)
		if len(ranks) > want {
			ranks = ranks[:want]
		}
		next[slot] = ranks
		old := r.assign[slot]
		if len(old) > 0 && len(ranks) > 0 && old[0] != ranks[0] {
			r.handoffs.Add(1)
		}
		if len(old) == 0 {
			continue // initial placement: every cache is empty, nothing to sync
		}
		wasHolder := make(map[NodeID]bool, len(old))
		for _, id := range old {
			wasHolder[id] = true
		}
		var source NodeID = -1
		for _, id := range old {
			if _, ok := r.nodes[id]; ok && !r.partitioned[id] {
				source = id
				break
			}
		}
		if source < 0 {
			continue // no surviving holder: the slot's state is lost (Replicas too low for this fault)
		}
		for _, id := range ranks {
			if wasHolder[id] || id == source {
				continue
			}
			if err := r.syncSlotLocked(id, slot, source, dumps); err != nil {
				return err
			}
		}
	}
	r.assign = next
	return nil
}

// resyncNodeLocked reconciles every slot a node holds as a replica
// against that slot's primary (sets for the primary's keys, deletes
// for stale extras), bringing a healed node back in sync (caller holds
// mu).
func (r *Router) resyncNodeLocked(id NodeID) error {
	dumps := make(map[NodeID]map[string][]byte)
	for slot := 0; slot < NumSlots; slot++ {
		holders := r.assign[slot]
		if len(holders) < 2 || holders[0] == id {
			continue
		}
		isHolder := false
		for _, h := range holders[1:] {
			if h == id {
				isHolder = true
				break
			}
		}
		if !isHolder {
			continue
		}
		if err := r.syncSlotLocked(id, slot, holders[0], dumps); err != nil {
			return err
		}
	}
	return nil
}

// syncSlotLocked reconciles target's copy of slot against source:
// source's keys in the slot are upserted into target, and target keys
// absent from source are deleted. Source dumps are cached across slots
// in dumps; a mutated target's cache entry is invalidated (caller
// holds mu).
func (r *Router) syncSlotLocked(target NodeID, slot int, source NodeID, dumps map[NodeID]map[string][]byte) error {
	tn, ok := r.nodes[target]
	if !ok {
		return &MembershipError{Node: target, Op: "sync", Reason: "unknown target"}
	}
	sm, err := r.dumpNodeLocked(source, dumps)
	if err != nil {
		return err
	}
	tm, err := tn.Dump()
	if err != nil {
		return fmt.Errorf("cluster: sync slot %d: dump target %d: %w", slot, target, err)
	}
	for _, k := range sortedKeys(sm) {
		if KeySlot(k) != slot {
			continue
		}
		if err := tn.Apply(workload.Request{Op: workload.OpSet, Key: k, Value: sm[k]}); err != nil {
			return fmt.Errorf("cluster: sync slot %d -> node %d: %w", slot, target, err)
		}
	}
	for _, k := range sortedKeys(tm) {
		if KeySlot(k) != slot {
			continue
		}
		if _, ok := sm[k]; ok {
			continue
		}
		if err := tn.Apply(workload.Request{Op: workload.OpDelete, Key: k}); err != nil {
			return fmt.Errorf("cluster: sync slot %d -> node %d: %w", slot, target, err)
		}
	}
	delete(dumps, target)
	return nil
}

// dumpNodeLocked returns a node's full dump, cached in dumps (caller
// holds mu).
func (r *Router) dumpNodeLocked(id NodeID, dumps map[NodeID]map[string][]byte) (map[string][]byte, error) {
	if m, ok := dumps[id]; ok {
		return m, nil
	}
	n, ok := r.nodes[id]
	if !ok {
		return nil, &MembershipError{Node: id, Op: "dump", Reason: "unknown node"}
	}
	m, err := n.Dump()
	if err != nil {
		return nil, fmt.Errorf("cluster: dump node %d: %w", id, err)
	}
	dumps[id] = m
	return m, nil
}

// sortedKeys returns m's keys ascending — the deterministic-iteration
// idiom for dump maps.
func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Dump returns the cluster's authoritative key→value state: the union,
// slot by slot, of each slot primary's keys. This is the survivor
// digest's currency — it must equal a single pool's dump given the
// same acked mutation stream.
func (r *Router) Dump() (map[string][]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string][]byte)
	dumps := make(map[NodeID]map[string][]byte)
	for slot := 0; slot < NumSlots; slot++ {
		holders := r.assign[slot]
		if len(holders) == 0 {
			continue
		}
		m, err := r.dumpNodeLocked(holders[0], dumps)
		if err != nil {
			return nil, err
		}
		for _, k := range sortedKeys(m) {
			if KeySlot(k) == slot {
				out[k] = m[k]
			}
		}
	}
	return out, nil
}

// Scan pages through the cluster's keys: the request fans out to every
// live node, pages merge in sorted key order, and slot ownership
// filters duplicates (replica copies) out — so a cluster scan returns
// exactly the keys a single pool's scan would.
func (r *Router) Scan(prefix, cursor string, limit int) (kvstore.ScanResult, error) {
	if err := r.serving("Scan"); err != nil {
		return kvstore.ScanResult{}, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.tickLocked(1)
	merged := make(map[string]kvstore.ScanItem)
	for _, id := range r.sortedNodeIDsLocked() {
		if r.partitioned[id] {
			continue
		}
		res, err := r.nodes[id].Scan(prefix, cursor, limit)
		if err != nil {
			return kvstore.ScanResult{}, err
		}
		for _, it := range res.Items {
			holders := r.assign[KeySlot(it.Key)]
			if len(holders) > 0 && holders[0] == id {
				merged[it.Key] = it
			}
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out kvstore.ScanResult
	for _, k := range keys {
		if limit > 0 && len(out.Items) == limit {
			out.Cursor = out.Items[len(out.Items)-1].Key
			break
		}
		out.Items = append(out.Items, merged[k])
	}
	return out, nil
}

// Owner returns the node currently holding key's slot as primary; ok
// is false when the slot has no holders.
func (r *Router) Owner(key string) (NodeID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	holders := r.assign[KeySlot(key)]
	if len(holders) == 0 {
		return -1, false
	}
	return holders[0], true
}

// Handoffs returns the count of slot-primary moves performed by
// rebalances (crash failovers, retires, joins).
func (r *Router) Handoffs() uint64 { return r.handoffs.Load() }

// Dispatched returns the count of requests routed to a node.
func (r *Router) Dispatched() uint64 { return r.dispatched.Load() }

// Unavailable returns the count of requests nacked with a typed
// *UnavailableError (never executed).
func (r *Router) Unavailable() uint64 { return r.unavailable.Load() }

// Members returns the registry's membership snapshot.
func (r *Router) Members() []Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.reg.Snapshot()
}

// Epoch returns the membership epoch.
func (r *Router) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.reg.Epoch()
}

// NodeIDs returns the current fleet's ids, ascending.
func (r *Router) NodeIDs() []NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sortedNodeIDsLocked()
}

// Stats aggregates server accounting across the fleet.
func (r *Router) Stats() kvstore.ServerStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var agg kvstore.ServerStats
	for _, id := range r.sortedNodeIDsLocked() {
		st := r.nodes[id].Stats()
		agg.Requests += st.Requests
		agg.Violations += st.Violations
		agg.Crashes += st.Crashes
		agg.Dropped += st.Dropped
		agg.Preempted += st.Preempted
	}
	return agg
}

// VirtualTime returns the cluster's parallel makespan: the maximum
// virtual time across nodes, which run concurrently.
func (r *Router) VirtualTime() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var max int64
	for _, id := range r.sortedNodeIDsLocked() {
		if vt := r.nodes[id].VirtualTime(); vt > max {
			max = vt
		}
	}
	return max
}

// Registry exposes the lease registry for tests and the campaign
// harness.
func (r *Router) Registry() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.reg
}
