package avail

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestFiveNinesBudgetIsAboutFivePointThreeMinutes(t *testing.T) {
	// The paper's arithmetic: 99.999% allows ≈5.26 min/year.
	b := DowntimeBudget(NinesTarget(5))
	if b < 5*time.Minute || b > 6*time.Minute {
		t.Errorf("five-nines budget = %v, want ≈5.26min", b)
	}
}

func TestPaperWorkedExample(t *testing.T) {
	// "a regular restart takes about 2 minutes (which would violate
	// 99.999% availability if there were three faults per year)".
	target := NinesTarget(5)
	if Meets(3, 2*time.Minute, target) {
		t.Error("3 faults/yr at 2min restart should violate five nines")
	}
	// "in-process rewinding takes only 3.5µs, allowing for more than
	// 9·10⁷ recoveries".
	n := MaxRecoveries(target, 3500*time.Nanosecond)
	if n < 9e7 {
		t.Errorf("max recoveries at 3.5µs = %.3g, want > 9e7", n)
	}
	if !Meets(9e7, 3500*time.Nanosecond, target) {
		t.Error("9e7 rewinds should still meet five nines")
	}
}

func TestNinesTarget(t *testing.T) {
	cases := map[int]float64{1: 0.9, 2: 0.99, 3: 0.999, 5: 0.99999}
	for n, want := range cases {
		if got := NinesTarget(n); math.Abs(got-want) > 1e-12 {
			t.Errorf("NinesTarget(%d) = %v, want %v", n, got, want)
		}
	}
	if NinesTarget(0) != 0 || NinesTarget(-1) != 0 {
		t.Error("non-positive nines should be 0")
	}
}

func TestDowntimeBudgetEdges(t *testing.T) {
	if DowntimeBudget(1) != 0 {
		t.Error("perfect availability should allow zero downtime")
	}
	if DowntimeBudget(0) != Year {
		t.Errorf("zero availability budget = %v, want a full year", DowntimeBudget(0))
	}
	if DowntimeBudget(-0.5) != Year {
		t.Error("negative target should clamp")
	}
}

func TestDowntimeComputation(t *testing.T) {
	if d := Downtime(3, 2*time.Minute); d != 6*time.Minute {
		t.Errorf("Downtime = %v, want 6min", d)
	}
	if d := Downtime(0, time.Hour); d != 0 {
		t.Errorf("zero faults downtime = %v", d)
	}
	if d := Downtime(-1, time.Hour); d != 0 {
		t.Error("negative fault rate should clamp to 0")
	}
	// Saturates at a full year.
	if d := Downtime(1e12, time.Hour); d != Year {
		t.Errorf("saturated downtime = %v, want Year", d)
	}
}

func TestAvailabilityAndNines(t *testing.T) {
	a := Availability(DowntimeBudget(0.999))
	if math.Abs(a-0.999) > 1e-9 {
		t.Errorf("Availability(budget(0.999)) = %v", a)
	}
	if Availability(0) != 1 {
		t.Error("zero downtime should be 100%")
	}
	if Availability(Year) != 0 || Availability(2*Year) != 0 {
		t.Error("full-year downtime should be 0%")
	}
	if n := Nines(0.999); math.Abs(n-3) > 1e-6 {
		t.Errorf("Nines(0.999) = %v, want 3", n)
	}
	if !math.IsInf(Nines(1), 1) {
		t.Error("Nines(1) should be +Inf")
	}
	if Nines(0) != 0 || Nines(-1) != 0 {
		t.Error("Nines of non-positive availability should be 0")
	}
}

func TestMaxRecoveriesEdge(t *testing.T) {
	if !math.IsInf(MaxRecoveries(0.99999, 0), 1) {
		t.Error("zero recovery time should allow infinite recoveries")
	}
	if MaxFaultRate(0.99999, time.Minute) != MaxRecoveries(0.99999, time.Minute) {
		t.Error("MaxFaultRate should equal MaxRecoveries")
	}
}

func TestFormatAvailability(t *testing.T) {
	cases := map[float64]string{
		1:       "100%",
		0.99999: "99.999%",
		0.999:   "99.9%",
	}
	for in, want := range cases {
		if got := FormatAvailability(in); got != want {
			t.Errorf("FormatAvailability(%v) = %q, want %q", in, got, want)
		}
	}
	if s := FormatAvailability(0.5); !strings.Contains(s, "%") {
		t.Errorf("FormatAvailability(0.5) = %q", s)
	}
}

// Property: availability/downtime round-trip within floating tolerance.
func TestAvailabilityRoundTripProperty(t *testing.T) {
	f := func(raw uint16) bool {
		target := 0.5 + float64(raw)/131072 // [0.5, 1.0)
		got := Availability(DowntimeBudget(target))
		return math.Abs(got-target) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Meets is monotone — fewer faults or faster recovery never
// turns a pass into a fail.
func TestMeetsMonotoneProperty(t *testing.T) {
	f := func(fRaw uint8, rRaw uint16) bool {
		faults := float64(fRaw)
		rec := time.Duration(rRaw) * time.Second
		target := NinesTarget(4)
		if Meets(faults, rec, target) {
			return Meets(faults/2, rec, target) && Meets(faults, rec/2, target)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSteadyStateFormulation(t *testing.T) {
	// MTTF = MTTR means 50% availability.
	if a := SteadyState(time.Hour, time.Hour); math.Abs(a-0.5) > 1e-12 {
		t.Errorf("SteadyState(1h,1h) = %v", a)
	}
	if SteadyState(0, time.Hour) != 0 {
		t.Error("zero MTTF should be 0")
	}
	if SteadyState(time.Hour, -time.Minute) != 1 {
		t.Error("negative MTTR should clamp to perfect")
	}
}

func TestSteadyStateAgreesWithRateFormulation(t *testing.T) {
	// The paper's arithmetic (rate x recovery) and the renewal formula
	// must agree in the rare-fault regime.
	for _, f := range []float64{1, 3, 10, 100} {
		recovery := 2 * time.Minute
		viaRate := Availability(Downtime(f, recovery))
		viaMTTF := SteadyState(MTTFFromRate(f), recovery)
		if math.Abs(viaRate-viaMTTF) > 1e-6 {
			t.Errorf("f=%v: rate formulation %v vs renewal %v", f, viaRate, viaMTTF)
		}
	}
}

func TestMTTFFromRate(t *testing.T) {
	if MTTFFromRate(1) != Year {
		t.Errorf("MTTF(1/yr) = %v, want a year", MTTFFromRate(1))
	}
	if got := MTTFFromRate(365.25 * 24); got < 59*time.Minute || got > 61*time.Minute {
		t.Errorf("hourly faults MTTF = %v, want ~1h", got)
	}
	if MTTFFromRate(0) <= Year {
		t.Error("zero rate should be effectively never")
	}
}
