// Package avail implements the dependability arithmetic behind the
// paper's availability claims (§IV): downtime budgets for "nines"
// targets, achieved availability under a fault rate and recovery time,
// and the maximum number of recoveries a budget admits.
//
// The paper's worked example: 99.999% availability allows ≈5.26 minutes
// of downtime per year; three faults per year at a 2-minute restart
// (6 minutes down) violates it, while 3.5 µs rewinds allow more than
// 9·10⁷ recoveries within the same budget.
package avail

import (
	"fmt"
	"math"
	"time"
)

// Year is the reference period for availability accounting (365.25 days).
const Year = 365*24*time.Hour + 6*time.Hour

// DowntimeBudget returns the allowed downtime per year for an
// availability target expressed as a fraction (e.g. 0.99999).
func DowntimeBudget(target float64) time.Duration {
	if target >= 1 {
		return 0
	}
	if target < 0 {
		target = 0
	}
	return time.Duration((1 - target) * float64(Year))
}

// NinesTarget converts a number of nines (5 → 0.99999) to a fraction.
func NinesTarget(nines int) float64 {
	if nines <= 0 {
		return 0
	}
	return 1 - math.Pow(10, -float64(nines))
}

// Downtime returns the expected downtime per year given a fault rate
// (faults per year) and a per-fault recovery time.
func Downtime(faultsPerYear float64, recovery time.Duration) time.Duration {
	if faultsPerYear < 0 {
		faultsPerYear = 0
	}
	d := faultsPerYear * float64(recovery)
	if d > float64(Year) {
		return Year
	}
	return time.Duration(d)
}

// Availability returns the achieved availability fraction given expected
// downtime per year.
func Availability(downtime time.Duration) float64 {
	if downtime <= 0 {
		return 1
	}
	if downtime >= Year {
		return 0
	}
	return 1 - float64(downtime)/float64(Year)
}

// Nines returns the number of nines of an availability fraction, as a
// real number (0.99995 → 4.3). Perfect availability returns +Inf.
func Nines(availability float64) float64 {
	if availability >= 1 {
		return math.Inf(1)
	}
	if availability <= 0 {
		return 0
	}
	return -math.Log10(1 - availability)
}

// Meets reports whether the achieved downtime stays within the budget of
// the target availability fraction.
func Meets(faultsPerYear float64, recovery time.Duration, target float64) bool {
	return Downtime(faultsPerYear, recovery) <= DowntimeBudget(target)
}

// MaxRecoveries returns how many recoveries of the given duration fit in
// the downtime budget of the target availability — the paper's ">9·10⁷
// recoveries" computation.
func MaxRecoveries(target float64, recovery time.Duration) float64 {
	if recovery <= 0 {
		return math.Inf(1)
	}
	return float64(DowntimeBudget(target)) / float64(recovery)
}

// MaxFaultRate returns the largest sustainable fault rate (faults/year)
// that still meets the target, given the recovery time.
func MaxFaultRate(target float64, recovery time.Duration) float64 {
	return MaxRecoveries(target, recovery)
}

// FormatAvailability renders an availability fraction in the conventional
// "99.999%" style with enough digits to show the nines.
func FormatAvailability(a float64) string {
	if a >= 1 {
		return "100%"
	}
	n := Nines(a)
	if n > 9 {
		// Beyond nine nines the decimal rendering is unreadable; report
		// the nines count directly.
		return fmt.Sprintf("~100%% (%.1f nines)", n)
	}
	// Floor the nines so 4.95 nines renders as "99.99%", not a rounded-up
	// "99.999%" that would contradict a failed five-nines check.
	decimals := int(n) - 2
	if decimals < 1 {
		decimals = 1
	}
	if decimals > 8 {
		decimals = 8
	}
	// Truncate instead of rounding: "99.99%" must never render as
	// "100.00%" or as a nines count it does not actually reach.
	scale := math.Pow(10, float64(decimals))
	truncated := math.Floor(a*100*scale) / scale
	return fmt.Sprintf("%.*f%%", decimals, truncated)
}

// SteadyState computes the classic renewal-theory availability
// MTTF/(MTTF+MTTR): the long-run fraction of time the service is up when
// failures arrive with mean time to failure MTTF and each takes MTTR to
// repair. It is the continuous-time counterpart of Downtime/Availability
// and agrees with them when faults are rare (MTTF >> MTTR).
func SteadyState(mttf, mttr time.Duration) float64 {
	if mttf <= 0 {
		return 0
	}
	if mttr < 0 {
		mttr = 0
	}
	return float64(mttf) / float64(mttf+mttr)
}

// MTTFFromRate converts a fault rate (faults per year) to the mean time
// to failure. A zero or negative rate returns the maximum representable
// duration (a practical "never").
func MTTFFromRate(faultsPerYear float64) time.Duration {
	if faultsPerYear <= 0 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(float64(Year) / faultsPerYear)
}
