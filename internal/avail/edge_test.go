package avail

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestZeroRequestWindow pins the empty-window corner: with no faults at
// all, every target — including perfect availability — is met, the
// expected downtime is zero, and the achieved availability is exactly 1.
func TestZeroRequestWindow(t *testing.T) {
	if d := Downtime(0, 2*time.Minute); d != 0 {
		t.Errorf("Downtime(0, 2m) = %v", d)
	}
	for _, target := range []float64{0, 0.9, 0.99999, 1} {
		if !Meets(0, 2*time.Minute, target) {
			t.Errorf("zero faults fails target %v", target)
		}
	}
	if a := Availability(0); a != 1 {
		t.Errorf("Availability(0) = %v", a)
	}
	if !math.IsInf(Nines(1), 1) {
		t.Error("Nines(1) should be +Inf")
	}
}

// TestNegativeInputsClamp: negative rates, recoveries, and targets
// degrade to their boundary values instead of producing nonsense.
func TestNegativeInputsClamp(t *testing.T) {
	if d := Downtime(-3, time.Minute); d != 0 {
		t.Errorf("Downtime(-3) = %v", d)
	}
	if b := DowntimeBudget(-0.5); b != Year {
		t.Errorf("DowntimeBudget(-0.5) = %v, want full year", b)
	}
	if b := DowntimeBudget(2); b != 0 {
		t.Errorf("DowntimeBudget(2) = %v, want 0", b)
	}
	if n := NinesTarget(0); n != 0 {
		t.Errorf("NinesTarget(0) = %v", n)
	}
	if n := NinesTarget(-4); n != 0 {
		t.Errorf("NinesTarget(-4) = %v", n)
	}
	if s := SteadyState(5*time.Minute, -time.Minute); s != 1 {
		t.Errorf("SteadyState with negative MTTR = %v, want 1", s)
	}
}

// TestDowntimeSaturatesAtYear: a fault rate so high the downtime
// exceeds the accounting period clamps to the period (availability 0),
// never beyond.
func TestDowntimeSaturatesAtYear(t *testing.T) {
	d := Downtime(1e12, time.Hour)
	if d != Year {
		t.Errorf("Downtime(1e12, 1h) = %v, want Year", d)
	}
	if a := Availability(d); a != 0 {
		t.Errorf("Availability(Year) = %v, want 0", a)
	}
	if a := Availability(Year + time.Hour); a != 0 {
		t.Errorf("Availability(>Year) = %v, want 0", a)
	}
	if n := Nines(0); n != 0 {
		t.Errorf("Nines(0) = %v", n)
	}
	if n := Nines(-0.1); n != 0 {
		t.Errorf("Nines(-0.1) = %v", n)
	}
}

// TestMaxRecoveriesExtremes: instant recovery admits unbounded
// recoveries; at perfect-availability targets the budget is zero, so no
// positive-duration recovery fits.
func TestMaxRecoveriesExtremes(t *testing.T) {
	if !math.IsInf(MaxRecoveries(0.99999, 0), 1) {
		t.Error("zero recovery time should allow infinite recoveries")
	}
	if !math.IsInf(MaxRecoveries(0.99999, -time.Second), 1) {
		t.Error("negative recovery time should clamp to infinite")
	}
	if n := MaxRecoveries(1, time.Microsecond); n != 0 {
		t.Errorf("perfect target admits %v recoveries, want 0", n)
	}
	if MaxFaultRate(0.999, time.Second) != MaxRecoveries(0.999, time.Second) {
		t.Error("MaxFaultRate must equal MaxRecoveries")
	}
}

// TestFormatAvailabilityNeverRoundsUp: the rendering must truncate —
// 0.99994999 shows as four nines territory ("99.99%"), never rounded to
// a five-nines string it does not reach, and values just under 1 never
// print "100".
func TestFormatAvailabilityNeverRoundsUp(t *testing.T) {
	cases := []struct {
		a        float64
		contains string
		excludes string
	}{
		{0.99994999, "99.99", "99.995"},
		{0.9999999999, "nines", "100.0"},
		{0.999949999, "99.99", "100"},
		{1.0, "100%", ""},
		{1.5, "100%", ""},
	}
	for _, tc := range cases {
		got := FormatAvailability(tc.a)
		if !strings.Contains(got, tc.contains) {
			t.Errorf("FormatAvailability(%v) = %q, want it to contain %q", tc.a, got, tc.contains)
		}
		if tc.excludes != "" && strings.Contains(got, tc.excludes) {
			t.Errorf("FormatAvailability(%v) = %q, must not contain %q", tc.a, got, tc.excludes)
		}
	}
}

// TestSteadyStateExtremes: zero MTTF means never up; huge MTTF with
// tiny MTTR approaches (but never exceeds) 1.
func TestSteadyStateExtremes(t *testing.T) {
	if s := SteadyState(0, time.Minute); s != 0 {
		t.Errorf("SteadyState(0, 1m) = %v", s)
	}
	if s := SteadyState(-time.Hour, time.Minute); s != 0 {
		t.Errorf("SteadyState(-1h, 1m) = %v", s)
	}
	s := SteadyState(1000*time.Hour, time.Microsecond)
	if s <= 0.999999 || s > 1 {
		t.Errorf("SteadyState(1000h, 1µs) = %v", s)
	}
}

// TestMTTFFromRateExtremes: zero and negative rates mean "never fails".
func TestMTTFFromRateExtremes(t *testing.T) {
	never := time.Duration(math.MaxInt64)
	if d := MTTFFromRate(0); d != never {
		t.Errorf("MTTFFromRate(0) = %v", d)
	}
	if d := MTTFFromRate(-1); d != never {
		t.Errorf("MTTFFromRate(-1) = %v", d)
	}
	// One fault per year: MTTF is the year itself.
	if d := MTTFFromRate(1); d != Year {
		t.Errorf("MTTFFromRate(1) = %v, want %v", d, Year)
	}
}
