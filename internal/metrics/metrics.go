package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram is a log-linear histogram of non-negative int64 samples
// (typically nanoseconds or cycles). It keeps 64 logarithmic major
// buckets with 16 linear sub-buckets each, giving <6.25% relative error —
// enough for percentile reporting. The zero value is ready to use.
type Histogram struct {
	counts [64 * subBuckets]uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

const subBuckets = 16

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// Major bucket = floor(log2(v)); sub-bucket from the next 4 bits.
	msb := 63 - int(leadingZeros(uint64(v)))
	sub := int((uint64(v) >> (uint(msb) - 4)) & (subBuckets - 1))
	idx := msb*subBuckets + sub
	if idx >= len([64 * subBuckets]uint64{}) {
		idx = len([64 * subBuckets]uint64{}) - 1
	}
	return idx
}

func leadingZeros(x uint64) uint {
	if x == 0 {
		return 64
	}
	var n uint
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketLow returns a representative (lower-bound) value for bucket idx.
func bucketLow(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	msb := idx / subBuckets
	sub := idx % subBuckets
	return (1 << uint(msb)) | (int64(sub) << uint(msb-4))
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an approximation of the q-quantile (0 <= q <= 1).
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// P50, P95, P99, P999 are convenience quantiles.
func (h *Histogram) P50() int64  { return h.Quantile(0.50) }
func (h *Histogram) P95() int64  { return h.Quantile(0.95) }
func (h *Histogram) P99() int64  { return h.Quantile(0.99) }
func (h *Histogram) P999() int64 { return h.Quantile(0.999) }

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
}

// Summary computes basic statistics over a float64 slice.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs (xs is not modified).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// FormatDuration renders a duration with paper-style units (µs, ms, s,
// min) and 3 significant digits.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	}
}
