package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// Persist aggregates durability-engine counters: WAL group commits,
// fsyncs, snapshot commits, and recovery outcomes. One Persist can be
// shared across shards (the pool hands every shard store the same
// instance), so all methods are safe for concurrent use. The zero value
// is ready to use.
type Persist struct {
	mu sync.Mutex
	s  PersistSnapshot
}

// PersistSnapshot is a point-in-time copy of the durability counters.
type PersistSnapshot struct {
	// Appends counts committed WAL group commits (one per batch, never
	// per op); AppendedBytes is their total framed size.
	Appends       uint64
	AppendedBytes uint64
	// Fsyncs counts file syncs on the WAL path. With fsync enabled this
	// tracks Appends one-to-one — the group-commit amortization claim.
	Fsyncs uint64
	// Snapshots counts committed snapshots; SnapshotPages the page
	// images they serialized (incremental, so far fewer than pages
	// mapped).
	Snapshots     uint64
	SnapshotPages uint64
	// Recoveries counts store opens that found prior state;
	// RecoveredBatches the committed WAL batches they replayed;
	// TornTailBytes the bytes discarded by torn-tail truncation.
	Recoveries       uint64
	RecoveredBatches uint64
	TornTailBytes    uint64
}

// ObserveAppend records one committed WAL group commit of n framed
// bytes, plus whether it was fsynced.
func (p *Persist) ObserveAppend(n int, fsynced bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.s.Appends++
	p.s.AppendedBytes += uint64(n)
	if fsynced {
		p.s.Fsyncs++
	}
}

// ObserveSnapshot records one committed snapshot of pages page images.
func (p *Persist) ObserveSnapshot(pages int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.s.Snapshots++
	p.s.SnapshotPages += uint64(pages)
}

// ObserveRecovery records one recovery: the committed WAL batches
// replayed and the torn-tail bytes truncated.
func (p *Persist) ObserveRecovery(batches int, tornBytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.s.Recoveries++
	p.s.RecoveredBatches += uint64(batches)
	p.s.TornTailBytes += uint64(tornBytes)
}

// Snapshot returns a copy of the counters.
func (p *Persist) Snapshot() PersistSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.s
}

// String renders the counters as a compact single-line summary.
func (p *Persist) String() string {
	s := p.Snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, "appends=%d bytes=%d fsyncs=%d snapshots=%d pages=%d",
		s.Appends, s.AppendedBytes, s.Fsyncs, s.Snapshots, s.SnapshotPages)
	fmt.Fprintf(&sb, " recoveries=%d replayed=%d torn=%d",
		s.Recoveries, s.RecoveredBatches, s.TornTailBytes)
	return sb.String()
}
