package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("zero-value histogram not empty")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 10000; i++ {
		h.Observe(i)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := float64(h.Quantile(q))
		want := q * 10000
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("Quantile(%v) = %v, want ~%v (rel err %.3f)", q, got, want, rel)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var h Histogram
	h.Observe(42)
	if h.Quantile(0) != 42 || h.Quantile(1) != 42 || h.P50() != 42 {
		t.Error("single-sample quantiles should all be the sample")
	}
	h.Observe(-5) // clamped to 0
	if h.Min() != 0 {
		t.Errorf("negative clamp: min = %d", h.Min())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 100; i++ {
		a.Observe(10)
		b.Observe(1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Min() != 10 || a.Max() != 1000 {
		t.Errorf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 200 {
		t.Error("merge with empty changed count")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(3 * time.Microsecond)
	if h.Max() != 3000 {
		t.Errorf("Max = %d, want 3000", h.Max())
	}
}

// Property: quantiles are monotone and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(int64(v % 1_000_000))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("stddev = %v", s.Stddev)
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Errorf("even median = %v", even.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary non-zero")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize mutated input")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Nanosecond, "500ns"},
		{3500 * time.Nanosecond, "3.50µs"},
		{2 * time.Millisecond, "2.00ms"},
		{3 * time.Second, "3.00s"},
		{2 * time.Minute, "2.0min"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.Caption = "cap"
	tb.AddRow("alpha", 1)
	tb.AddRow("beta-long-name", 123.456)
	out := tb.String()
	for _, want := range []string{"Demo", "name", "alpha", "beta-long-name", "123.5", "cap"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("x", "y")
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| x | y |") {
		t.Errorf("markdown:\n%s", md)
	}
}

func TestTableAccessorsCopy(t *testing.T) {
	tb := NewTable("T", "a")
	tb.AddRow("v")
	h := tb.Headers()
	h[0] = "mutated"
	r := tb.Rows()
	r[0][0] = "mutated"
	if tb.Headers()[0] != "a" || tb.Rows()[0][0] != "v" {
		t.Error("accessors leaked internal state")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		5000:    "5000",
		42.42:   "42.4",
		3.14159: "3.142",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestP95Quantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i) * 100)
	}
	p95 := h.P95()
	// Log-linear buckets give <6.25% relative error around 9500.
	if p95 < 8800 || p95 > 10000 {
		t.Errorf("P95 = %d, want ~9500", p95)
	}
	if h.P50() > p95 || p95 > h.P99() {
		t.Errorf("quantiles not monotone: p50=%d p95=%d p99=%d", h.P50(), p95, h.P99())
	}
}

func TestBatchLatencySummaries(t *testing.T) {
	var b BatchLatency
	// Batches of 1 cost 1000 cycles/call; batches of 8 amortize to 300.
	for i := 0; i < 50; i++ {
		b.Observe(1, 1000)
		b.Observe(8, 8*300)
	}
	b.Observe(0, 999) // ignored
	rows := b.Summaries()
	if len(rows) != 2 {
		t.Fatalf("got %d summaries, want 2", len(rows))
	}
	if rows[0].Size != 1 || rows[1].Size != 8 {
		t.Fatalf("sizes = %d,%d, want ascending 1,8", rows[0].Size, rows[1].Size)
	}
	if rows[0].Batches != 50 || rows[0].Calls != 50 {
		t.Errorf("size 1: batches=%d calls=%d, want 50/50", rows[0].Batches, rows[0].Calls)
	}
	if rows[1].Batches != 50 || rows[1].Calls != 400 {
		t.Errorf("size 8: batches=%d calls=%d, want 50/400", rows[1].Batches, rows[1].Calls)
	}
	if !(rows[1].P50 < rows[0].P50) {
		t.Errorf("amortization not visible: p50(size 8)=%d !< p50(size 1)=%d", rows[1].P50, rows[0].P50)
	}
	if b.String() == "" || (&BatchLatency{}).String() != "(no batches observed)\n" {
		t.Error("String rendering broken")
	}
}

func TestBatchLatencyConcurrent(t *testing.T) {
	var b BatchLatency
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Observe(1+g%4, uint64(1000+i))
			}
		}(g)
	}
	wg.Wait()
	var batches uint64
	for _, r := range b.Summaries() {
		batches += r.Batches
	}
	if batches != 1600 {
		t.Errorf("recorded %d batches, want 1600", batches)
	}
}
