package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// BatchLatency aggregates virtual-cycle latency histograms keyed by
// batch size, for the asynchronous batched execution layer: one
// histogram per observed batch size, so the amortization of the
// per-entry toll shows up directly as falling per-call percentiles at
// larger sizes. Safe for concurrent use (batch workers run in
// parallel). The zero value is ready to use.
type BatchLatency struct {
	mu     sync.Mutex
	bySize map[int]*Histogram
	calls  map[int]uint64
}

// Observe records one executed batch: its size and the virtual cycles
// the whole batch consumed on its worker's machine. The histogram for
// the size records per-call cycles (cycles/size), the number that must
// fall as batching amortizes fixed costs.
func (b *BatchLatency) Observe(size int, cycles uint64) {
	if size <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bySize == nil {
		b.bySize = make(map[int]*Histogram)
		b.calls = make(map[int]uint64)
	}
	h := b.bySize[size]
	if h == nil {
		h = &Histogram{}
		b.bySize[size] = h
	}
	h.Observe(int64(cycles / uint64(size)))
	b.calls[size] += uint64(size)
}

// BatchSummary is the percentile digest for one batch size.
type BatchSummary struct {
	// Size is the batch size this row summarizes.
	Size int
	// Batches and Calls count executed batches and the calls they
	// carried.
	Batches uint64
	Calls   uint64
	// P50, P95, P99 are per-call virtual-cycle latency quantiles.
	P50, P95, P99 int64
	// Mean is the mean per-call virtual-cycle latency.
	Mean float64
}

// Summaries returns one row per observed batch size, ascending by size.
func (b *BatchLatency) Summaries() []BatchSummary {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BatchSummary, 0, len(b.bySize))
	//lint:detorder rows are sorted by Size immediately below
	for size, h := range b.bySize {
		out = append(out, BatchSummary{
			Size:    size,
			Batches: h.Count(),
			Calls:   b.calls[size],
			P50:     h.P50(),
			P95:     h.P95(),
			P99:     h.P99(),
			Mean:    h.Mean(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Size < out[j].Size })
	return out
}

// String renders the summaries as a fixed-width table (cycles).
func (b *BatchLatency) String() string {
	rows := b.Summaries()
	if len(rows) == 0 {
		return "(no batches observed)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %10s %10s %12s %12s %12s\n",
		"batch", "batches", "calls", "p50 cyc", "p95 cyc", "p99 cyc")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8d %10d %10d %12d %12d %12d\n",
			r.Size, r.Batches, r.Calls, r.P50, r.P95, r.P99)
	}
	return sb.String()
}
