package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// This file adds per-tenant accounting for the gateway tier: admission
// outcomes (admitted, throttled, quota- and quarantine-rejected,
// drained) and per-tenant fault attribution (detections, preemptions),
// which the circuit breaker and the campaign gateway trace both read.
// All counters are tenant-local: one tenant's traffic never moves
// another tenant's numbers, which is the invariant the isolation oracle
// leans on.

// TenantCounters is one tenant's gateway accounting.
type TenantCounters struct {
	// Admitted counts requests that passed admission (probes included);
	// Completed counts the subset whose outcome was observed.
	Admitted, Completed uint64
	// Throttled counts token-bucket rejections, QuotaRejected the
	// inflight-quota rejections, QuarantineRejected the circuit-breaker
	// rejections, Drained the rejections after drain started.
	Throttled, QuotaRejected, QuarantineRejected, Drained uint64
	// Detections and Preemptions attribute contained violations and
	// budget preemptions to the tenant whose request caused them.
	Detections, Preemptions uint64
	// Quarantines counts breaker trips, Probes the quarantine probe
	// admissions, Readmissions the clean probes that lifted a quarantine.
	Quarantines, Probes, Readmissions uint64
}

// TenantSnapshot is one tenant's counters with its name attached.
type TenantSnapshot struct {
	// Tenant is the tenant name.
	Tenant string
	// TenantCounters is the counter snapshot.
	TenantCounters
}

// TenantStats tracks TenantCounters per tenant. Safe for concurrent
// use.
type TenantStats struct {
	mu sync.Mutex
	m  map[string]*TenantCounters
}

// NewTenantStats creates an empty per-tenant stats table.
func NewTenantStats() *TenantStats {
	return &TenantStats{m: make(map[string]*TenantCounters)}
}

// Observe applies f to tenant's counters under the lock, creating the
// tenant's row on first use.
func (s *TenantStats) Observe(tenant string, f func(*TenantCounters)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.m[tenant]
	if c == nil {
		c = &TenantCounters{}
		s.m[tenant] = c
	}
	f(c)
}

// Get returns a copy of tenant's counters (zero value for an unseen
// tenant).
func (s *TenantStats) Get(tenant string) TenantCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.m[tenant]; c != nil {
		return *c
	}
	return TenantCounters{}
}

// Snapshot returns every tenant's counters sorted by tenant name, the
// deterministic order health endpoints and traces render.
func (s *TenantStats) Snapshot() []TenantSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.m))
	for name := range s.m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TenantSnapshot, len(names))
	for i, name := range names {
		out[i] = TenantSnapshot{Tenant: name, TenantCounters: *s.m[name]}
	}
	return out
}

// String renders one line per tenant in sorted order.
func (s *TenantStats) String() string {
	var sb strings.Builder
	for _, t := range s.Snapshot() {
		fmt.Fprintf(&sb,
			"tenant %s: admitted=%d completed=%d throttled=%d quota=%d quarantine=%d drained=%d detections=%d preemptions=%d quarantines=%d probes=%d readmissions=%d\n",
			t.Tenant, t.Admitted, t.Completed, t.Throttled, t.QuotaRejected, t.QuarantineRejected,
			t.Drained, t.Detections, t.Preemptions, t.Quarantines, t.Probes, t.Readmissions)
	}
	return sb.String()
}
