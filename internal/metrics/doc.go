// Package metrics provides the small measurement toolkit used by the
// experiment harness: log-linear latency histograms, summary statistics,
// and fixed-width table rendering for paper-style output.
//
// BatchLatency extends the kit for the asynchronous batched execution
// layer: per-batch-size histograms of per-call virtual-cycle latency
// (p50/p95/p99), so the amortization of the domain-entry toll is
// directly visible as falling percentiles at larger batch sizes
// (DESIGN.md §9).
package metrics
