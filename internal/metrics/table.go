package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple fixed-width text table used to render paper-style
// experiment output. Build with NewTable, add rows, render with String.
type Table struct {
	Title   string
	Caption string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Headers returns a copy of the column headers.
func (t *Table) Headers() []string { return append([]string(nil), t.headers...) }

// Rows returns a deep copy of the data rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	ncol := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	for i, hd := range t.headers {
		widths[i] = len(hd)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, ncol)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.rows {
		cells := make([]string, len(t.headers))
		copy(cells, r)
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Caption)
	}
	return b.String()
}
