package lifecycle_test

import (
	"testing"
	"time"

	"repro/internal/lifecycle"
)

// TestResizableDuringTransition pins the lock-freedom contract the
// elastic layers' teardown depends on: while a Drain/Stop/Close work
// function is still running (the machine mutex is held for the whole
// transition), State already reports the new state and Resizable
// returns the typed refusal immediately instead of blocking on the
// mutex. The AsyncPool stops its elastic controller from inside those
// work functions and waits for the controller loop to exit; if the
// loop's Resizable probe blocked here, the drain would wait on the
// loop and the loop on the drain's mutex — a permanent deadlock.
func TestResizableDuringTransition(t *testing.T) {
	cases := []struct {
		name string
		run  func(m *lifecycle.Machine, fn func() error) error
		want lifecycle.State
	}{
		{"Drain", func(m *lifecycle.Machine, fn func() error) error { return m.Drain(fn) }, lifecycle.StateDraining},
		{"Stop", func(m *lifecycle.Machine, fn func() error) error { return m.Stop(fn) }, lifecycle.StateStopped},
		{"Close", func(m *lifecycle.Machine, fn func() error) error { return m.Close(fn) }, lifecycle.StateStopped},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := lifecycle.NewMachine("lifecycletest.machine")
			if err := m.Init(nil); err != nil {
				t.Fatalf("Init: %v", err)
			}
			if err := m.Start(nil); err != nil {
				t.Fatalf("Start: %v", err)
			}

			entered := make(chan struct{})
			release := make(chan struct{})
			done := make(chan error, 1)
			go func() {
				done <- tc.run(m, func() error {
					close(entered)
					<-release
					return nil
				})
			}()
			<-entered

			// The transition's work function is in progress: the new
			// state must already be visible...
			if got := m.State(); got != tc.want {
				t.Errorf("State during %s = %s, want %s", tc.name, got, tc.want)
			}
			// ...and Resizable must refuse without blocking on the
			// machine mutex the transition holds.
			probe := make(chan error, 1)
			go func() { probe <- m.Resizable() }()
			select {
			case err := <-probe:
				le, ok := lifecycle.IsLifecycle(err)
				if !ok {
					t.Fatalf("Resizable during %s: got %v, want *LifecycleError", tc.name, err)
				}
				if le.From != tc.want {
					t.Errorf("Resizable refusal From = %s, want %s", le.From, tc.want)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("Resizable blocked on an in-progress transition")
			}

			close(release)
			if err := <-done; err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		})
	}
}
