// Package lifecycletest is the table-driven conformance suite for
// lifecycle.Component implementations. Every component that embeds a
// lifecycle.Machine runs the same battery: illegal transitions are
// rejected with a typed *LifecycleError (Start before Init, double
// Start, double Stop, Resize while Draining), the observed state
// sequence is rank-monotone, Drain and Close are idempotent, and a
// stopped component stays stopped. Run it from a component package's
// tests with a factory that builds a pristine (deferred, un-Inited)
// instance per case.
package lifecycletest

import (
	"context"
	"testing"

	"repro/internal/lifecycle"
)

// Case is one component under conformance test.
type Case struct {
	// Name labels the subtest.
	Name string
	// New builds a pristine component: constructed, Init not yet
	// called. It is invoked several times per case, so it must not
	// share state across invocations.
	New func(t *testing.T) lifecycle.Component
	// Resize, when non-nil, resizes the component (which must then
	// also reject resizes while draining/stopped). Grow and Shrink are
	// the worker counts exercised while healthy; both default to
	// skipping the healthy-resize probe when zero.
	Resize func(c lifecycle.Component, n int) error
	// Grow and Shrink are the counts passed to Resize while Healthy
	// (ignored when Resize is nil).
	Grow, Shrink int
}

// Run executes the conformance battery for every case.
func Run(t *testing.T, cases []Case) {
	t.Helper()
	for _, tc := range cases {
		t.Run(tc.Name, func(t *testing.T) {
			t.Run("illegal-before-init", tc.illegalBeforeInit)
			t.Run("full-lifecycle", tc.fullLifecycle)
			t.Run("close-idempotent", tc.closeIdempotent)
		})
	}
}

// wantLifecycleErr asserts err is a typed *LifecycleError for op.
func wantLifecycleErr(t *testing.T, err error, op string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected *LifecycleError, got nil", op)
	}
	le, ok := lifecycle.IsLifecycle(err)
	if !ok {
		t.Fatalf("%s: expected *LifecycleError, got %T: %v", op, err, err)
	}
	if le.Op == "" || le.Component == "" {
		t.Fatalf("%s: LifecycleError missing op/component: %+v", op, le)
	}
}

// stateTracker asserts the component's state rank never decreases.
type stateTracker struct {
	t    *testing.T
	c    lifecycle.Component
	prev lifecycle.State
}

func (st *stateTracker) check(after string) {
	st.t.Helper()
	cur := st.c.State()
	if !lifecycle.Monotone(st.prev, cur) {
		st.t.Fatalf("after %s: state went backwards: %s -> %s", after, st.prev, cur)
	}
	st.prev = cur
}

// illegalBeforeInit: a pristine component refuses Start, Drain, and
// Resize, and stays Initializing through the refusals.
func (tc Case) illegalBeforeInit(t *testing.T) {
	c := tc.New(t)
	if got := c.State(); got != lifecycle.StateInitializing {
		t.Fatalf("fresh component state = %s, want %s", got, lifecycle.StateInitializing)
	}
	wantLifecycleErr(t, c.Start(), "Start-before-Init")
	wantLifecycleErr(t, c.Drain(), "Drain-before-Init")
	if tc.Resize != nil {
		wantLifecycleErr(t, tc.Resize(c, 2), "Resize-before-Init")
	}
	if got := c.State(); got != lifecycle.StateInitializing {
		t.Fatalf("state after refused transitions = %s, want %s", got, lifecycle.StateInitializing)
	}
	// Teardown of the husk must not leak: Stop on an un-inited
	// component is a typed refusal, not a crash.
	wantLifecycleErr(t, c.Stop(context.Background()), "Stop-before-Init")
}

// fullLifecycle: Init → Start → (Resize) → Drain → Stop, with every
// double transition rejected and the state sequence monotone.
func (tc Case) fullLifecycle(t *testing.T) {
	c := tc.New(t)
	st := &stateTracker{t: t, c: c, prev: c.State()}

	if err := c.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	st.check("Init")
	wantLifecycleErr(t, c.Init(), "double-Init")
	if got := c.State(); got != lifecycle.StateInitializing {
		t.Fatalf("state after Init = %s, want %s (Start flips to healthy)", got, lifecycle.StateInitializing)
	}

	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	st.check("Start")
	if got := c.State(); got != lifecycle.StateHealthy {
		t.Fatalf("state after Start = %s, want %s", got, lifecycle.StateHealthy)
	}
	wantLifecycleErr(t, c.Start(), "double-Start")

	if tc.Resize != nil && tc.Grow > 0 {
		if err := tc.Resize(c, tc.Grow); err != nil {
			t.Fatalf("Resize(grow=%d) while healthy: %v", tc.Grow, err)
		}
		st.check("Resize-grow")
	}
	if tc.Resize != nil && tc.Shrink > 0 {
		if err := tc.Resize(c, tc.Shrink); err != nil {
			t.Fatalf("Resize(shrink=%d) while healthy: %v", tc.Shrink, err)
		}
		st.check("Resize-shrink")
	}

	if err := c.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st.check("Drain")
	if got := c.State(); got != lifecycle.StateDraining {
		t.Fatalf("state after Drain = %s, want %s", got, lifecycle.StateDraining)
	}
	// Drain is idempotent: the second call returns the memoized
	// outcome, not a typed refusal.
	if err := c.Drain(); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	st.check("double-Drain")
	if tc.Resize != nil {
		wantLifecycleErr(t, tc.Resize(c, 4), "Resize-while-Draining")
	}

	if err := c.Stop(context.Background()); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	st.check("Stop")
	if got := c.State(); got != lifecycle.StateStopped {
		t.Fatalf("state after Stop = %s, want %s", got, lifecycle.StateStopped)
	}
	wantLifecycleErr(t, c.Stop(context.Background()), "double-Stop")
	if tc.Resize != nil {
		wantLifecycleErr(t, tc.Resize(c, 4), "Resize-after-Stop")
	}
	st.check("double-Stop")
}

// closeIdempotent: a component that also has a legacy Close must make
// it idempotent (second Close returns the first outcome, here nil) and
// terminal.
func (tc Case) closeIdempotent(t *testing.T) {
	c := tc.New(t)
	if err := c.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	cl, ok := c.(interface{ Close() error })
	if !ok {
		t.Skip("component has no Close")
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second Close (must be idempotent): %v", err)
	}
	if got := c.State(); got != lifecycle.StateStopped {
		t.Fatalf("state after Close = %s, want %s", got, lifecycle.StateStopped)
	}
	// Stop after Close is the strict form: typed refusal.
	wantLifecycleErr(t, c.Stop(context.Background()), "Stop-after-Close")
}
