// Package lifecycle is the shared component-lifecycle contract of the
// repository: one typed state machine — Initializing → Healthy →
// Degraded → Draining → Stopped — implemented by every long-lived
// component (Domain, Pool, AsyncPool, the kvstore pool, both network
// servers, the campaign executors, and the future cluster nodes).
//
// The pattern follows the Milvus Component Init/Start/Stop/
// GetComponentStates shape: construction is cheap and deferred (a
// component is born Initializing), Init allocates its resources, Start
// makes it serve, Drain stops admission while preserving acknowledged
// work, and Stop tears it down. Illegal transitions — Start before
// Init, a second Stop, Resize while Draining — fail with a typed
// *LifecycleError instead of corrupting state, and health only moves
// forward: the state rank is monotone, so observers never see a
// component "un-drain" or "un-stop".
//
// Machine is the one implementation every component embeds; the
// conformance suite in lifecycletest asserts the contract against each
// of them. DESIGN.md §13 develops the full argument, including why
// elastic pool resizing hangs off this machine's Healthy/Degraded
// states.
package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// State is one point in the lifecycle state machine. The zero value is
// StateInitializing, so a zero Machine is a freshly constructed
// component. States are ordered: transitions only increase the rank
// (with the single exception Healthy ↔ Degraded, which share a rank —
// degradation is a health annotation, not a lifecycle step backwards).
type State int32

// The lifecycle states, in rank order.
const (
	// StateInitializing is the birth state: constructed, resources not
	// yet allocated (before Init) or allocated but not serving (after
	// Init, before Start).
	StateInitializing State = iota
	// StateHealthy is the serving state entered by Start.
	StateHealthy
	// StateDegraded is Healthy with a lasting fault annotation (e.g. a
	// snapshot failure left durability log-only). The component still
	// serves.
	StateDegraded
	// StateDraining is entered by Drain: admission has stopped and
	// queued work is being preserved; the component no longer accepts
	// new requests.
	StateDraining
	// StateStopped is terminal: resources released by Stop (or Close).
	StateStopped
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateInitializing:
		return "initializing"
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// rank orders states for the monotonicity invariant. Healthy and
// Degraded share a rank: a degraded component may not return to
// plain Healthy through the machine (degradation is sticky), but the
// two are the same lifecycle stage.
func (s State) rank() int {
	if s == StateDegraded {
		return StateHealthy.rank()
	}
	return int(s)
}

// LifecycleError reports an illegal lifecycle transition: the operation
// attempted, the component it was attempted on, and the state that
// refused it. It is the typed rejection every Component implementation
// returns instead of silently misbehaving.
type LifecycleError struct {
	// Component names the refusing component (e.g. "sdrad.Pool").
	Component string
	// Op is the refused operation ("Start", "Stop", "Resize", ...).
	Op string
	// From is the state the component was in when it refused.
	From State
	// Reason explains the refusal when the state alone is ambiguous
	// (e.g. "before Init").
	Reason string
}

// Error implements error.
func (e *LifecycleError) Error() string {
	msg := fmt.Sprintf("lifecycle: %s: illegal %s in state %s", e.Component, e.Op, e.From)
	if e.Reason != "" {
		msg += " (" + e.Reason + ")"
	}
	return msg
}

// IsLifecycle reports whether err is (or wraps) a *LifecycleError,
// returning it — the comma-ok classifier for lifecycle rejections.
func IsLifecycle(err error) (*LifecycleError, bool) {
	var le *LifecycleError
	if errors.As(err, &le) {
		return le, true
	}
	return nil, false
}

// Component is the shared lifecycle interface: Init allocates, Start
// serves, Drain stops admission while preserving acknowledged work,
// Stop tears down. Stop takes a context because teardown may flush
// durable state; Init/Start/Drain are bounded by the component's own
// configuration. State is safe to call concurrently with any
// transition.
type Component interface {
	// Init allocates the component's resources. Legal exactly once,
	// from StateInitializing.
	Init() error
	// Start makes the component serve. Legal exactly once, after Init.
	Start() error
	// Drain stops admission and preserves acknowledged work. Legal
	// after Start; idempotent (a second Drain returns the first
	// outcome).
	Drain() error
	// Stop tears the component down. Legal exactly once after Init; a
	// second Stop returns a *LifecycleError (use Close for the
	// idempotent form).
	Stop(ctx context.Context) error
	// State returns the current lifecycle state.
	State() State
}

// Resizer is implemented by elastic components whose worker count can
// change at runtime. Resize is legal only while Healthy or Degraded —
// resizing a Draining or Stopped component returns a *LifecycleError.
type Resizer interface {
	// Resize grows or shrinks to n workers.
	Resize(n int) error
	// Workers returns the current worker count.
	Workers() int
}

// Machine is the one lifecycle state machine every component embeds.
// Transitions run their work function under the machine's mutex, so a
// component's Init/Start/Drain/Stop bodies are mutually serialized;
// State reads an atomic mirror and never blocks on an in-progress
// transition. The zero Machine is unusable — create with NewMachine so
// errors carry the component name.
type Machine struct {
	mu   sync.Mutex
	name string

	state   atomic.Int32 // mirror of cur, for lock-free State()
	cur     State
	inited  bool
	started bool

	drained  bool
	drainErr error

	stopped bool
	stopErr error
}

// NewMachine returns a Machine in StateInitializing for the named
// component.
func NewMachine(name string) *Machine {
	return &Machine{name: name}
}

// State returns the current lifecycle state without blocking on
// in-progress transitions.
func (m *Machine) State() State { return State(m.state.Load()) }

// Name returns the component name the machine was created with.
func (m *Machine) Name() string { return m.name }

// set records a transition (caller holds mu).
func (m *Machine) set(s State) {
	m.cur = s
	m.state.Store(int32(s))
}

// refuse builds the typed rejection (caller holds mu).
func (m *Machine) refuse(op, reason string) error {
	return &LifecycleError{Component: m.name, Op: op, From: m.cur, Reason: reason}
}

// Init runs fn as the component's resource allocation. Legal exactly
// once, from StateInitializing; the state stays Initializing (Start
// moves it to Healthy). A failed fn leaves the machine un-inited so a
// caller may retry.
func (m *Machine) Init(fn func() error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur != StateInitializing {
		return m.refuse("Init", "")
	}
	if m.inited {
		return m.refuse("Init", "already initialized")
	}
	if fn != nil {
		if err := fn(); err != nil {
			return err
		}
	}
	m.inited = true
	return nil
}

// Start runs fn as the component's serving transition and moves the
// machine to StateHealthy. Legal exactly once, after Init.
func (m *Machine) Start(fn func() error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.inited {
		return m.refuse("Start", "before Init")
	}
	if m.started || m.cur != StateInitializing {
		return m.refuse("Start", "")
	}
	if fn != nil {
		if err := fn(); err != nil {
			return err
		}
	}
	m.started = true
	m.set(StateHealthy)
	return nil
}

// Degrade annotates a serving component with a lasting fault: Healthy
// becomes Degraded. It reports whether the state changed (false when
// already Degraded or not serving — degradation never moves the
// machine backwards from Draining/Stopped).
func (m *Machine) Degrade() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur != StateHealthy {
		return false
	}
	m.set(StateDegraded)
	return true
}

// Drain runs fn as the component's graceful-drain step and moves the
// machine to StateDraining. Legal from Healthy or Degraded; idempotent
// (a second Drain returns the first outcome without re-running fn);
// illegal before Start or after Stop.
//
// The machine moves to StateDraining before fn runs, so the lock-free
// observers (State, Resizable) report the transition while the drain
// work is still in progress. Components rely on that ordering to stop
// helper goroutines from inside fn: a helper probing Resizable sees an
// immediate refusal instead of blocking on the mutex fn's caller holds.
func (m *Machine) Drain(fn func() error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.drained {
		return m.drainErr
	}
	if m.cur != StateHealthy && m.cur != StateDegraded {
		return m.refuse("Drain", "")
	}
	m.set(StateDraining)
	m.drained = true
	if fn != nil {
		m.drainErr = fn()
	}
	return m.drainErr
}

// Stop runs fn as the component's teardown and moves the machine to
// StateStopped. Legal from Healthy, Degraded, Draining, or an
// initialized-but-never-started component; a second Stop returns a
// *LifecycleError (Close is the memoized idempotent form).
func (m *Machine) Stop(fn func() error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return m.refuse("Stop", "already stopped")
	}
	if !m.inited {
		return m.refuse("Stop", "before Init")
	}
	return m.stopLocked(fn)
}

// stopLocked performs the teardown transition (caller holds mu and has
// validated legality). Like Drain, it publishes StateStopped before
// running fn, so lock-free observers see the transition while teardown
// is still in progress.
func (m *Machine) stopLocked(fn func() error) error {
	m.stopped = true
	m.set(StateStopped)
	if fn != nil {
		m.stopErr = fn()
	}
	return m.stopErr
}

// Close is the idempotent wrapper over Stop that legacy Close methods
// map onto: the first call stops (running fn) and memoizes the
// outcome, later calls return that outcome without re-running fn. A
// Close before Init succeeds as a no-op (tearing down a husk is not an
// error).
func (m *Machine) Close(fn func() error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return m.stopErr
	}
	if !m.inited {
		// Nothing was allocated; just pin the terminal state.
		m.stopped = true
		m.set(StateStopped)
		return nil
	}
	return m.stopLocked(fn)
}

// Resizable returns nil when a resize is legal (serving: Healthy or
// Degraded) and the typed refusal otherwise — the gate every elastic
// component's Resize calls first.
//
// Resizable is deliberately lock-free: it reads the atomic state mirror
// and never takes the machine mutex. Drain and Stop hold that mutex
// while their work functions run, and those work functions may wait for
// an elastic controller goroutine to exit — a goroutine whose resize
// loop probes Resizable. Because the state is published before the work
// function starts, such a probe observes the Draining/Stopped refusal
// immediately instead of deadlocking against the transition waiting for
// it.
func (m *Machine) Resizable() error {
	s := m.State()
	if s == StateHealthy || s == StateDegraded {
		return nil
	}
	reason := ""
	if s == StateInitializing {
		reason = "before Start"
	}
	return &LifecycleError{Component: m.name, Op: "Resize", From: s, Reason: reason}
}

// Monotone reports whether a transition from s to t respects the
// forward-only rank order — the invariant the conformance suite
// asserts over every observed state sequence.
func Monotone(s, t State) bool { return t.rank() >= s.rank() }
