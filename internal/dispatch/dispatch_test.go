package dispatch

import "testing"

func TestLeastLoadedPicksMinimum(t *testing.T) {
	loads := []int64{3, 1, 4, 1, 5}
	if got := LeastLoaded(len(loads), 0, func(i int) int64 { return loads[i] }); got != 1 {
		t.Errorf("LeastLoaded = %d, want 1 (first minimum from start 0)", got)
	}
	// Starting past the first minimum finds the other tied shard.
	if got := LeastLoaded(len(loads), 2, func(i int) int64 { return loads[i] }); got != 3 {
		t.Errorf("LeastLoaded from 2 = %d, want 3", got)
	}
}

func TestLeastLoadedRotatesIdleWorkers(t *testing.T) {
	seen := make(map[int]bool)
	for start := 0; start < 4; start++ {
		seen[LeastLoaded(4, start, func(int) int64 { return 0 })] = true
	}
	if len(seen) != 4 {
		t.Errorf("idle rotation covered %d of 4 workers", len(seen))
	}
}

func TestLeastLoadedNegativeAndOversizedStart(t *testing.T) {
	for _, start := range []int{-1, -17, 5, 1 << 30} {
		got := LeastLoaded(4, start, func(int) int64 { return 7 })
		if got < 0 || got >= 4 {
			t.Errorf("LeastLoaded(start=%d) = %d, out of range", start, got)
		}
	}
}
