package dispatch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestLeastLoadedPicksMinimum(t *testing.T) {
	loads := []int64{3, 1, 4, 1, 5}
	if got := LeastLoaded(len(loads), 0, func(i int) int64 { return loads[i] }); got != 1 {
		t.Errorf("LeastLoaded = %d, want 1 (first minimum from start 0)", got)
	}
	// Starting past the first minimum finds the other tied shard.
	if got := LeastLoaded(len(loads), 2, func(i int) int64 { return loads[i] }); got != 3 {
		t.Errorf("LeastLoaded from 2 = %d, want 3", got)
	}
}

func TestLeastLoadedRotatesIdleWorkers(t *testing.T) {
	seen := make(map[int]bool)
	for start := 0; start < 4; start++ {
		seen[LeastLoaded(4, start, func(int) int64 { return 0 })] = true
	}
	if len(seen) != 4 {
		t.Errorf("idle rotation covered %d of 4 workers", len(seen))
	}
}

func TestLeastLoadedNegativeAndOversizedStart(t *testing.T) {
	for _, start := range []int{-1, -17, 5, 1 << 30} {
		got := LeastLoaded(4, start, func(int) int64 { return 7 })
		if got < 0 || got >= 4 {
			t.Errorf("LeastLoaded(start=%d) = %d, out of range", start, got)
		}
	}
}

// TestAcquireReserves pins the contract that distinguishes Acquire from
// LeastLoaded: the winner's counter is already incremented when Acquire
// returns.
func TestAcquireReserves(t *testing.T) {
	counters := make([]atomic.Int64, 4)
	at := func(i int) *atomic.Int64 { return &counters[i] }
	for n := 1; n <= 8; n++ {
		idx := Acquire(4, n, at)
		if counters[idx].Load() <= 0 {
			t.Fatalf("Acquire returned %d without reserving it", idx)
		}
	}
	var total int64
	for i := range counters {
		total += counters[i].Load()
	}
	if total != 8 {
		t.Fatalf("8 Acquires reserved %d slots in total", total)
	}
}

// TestAcquireBoundedImbalance hammers Acquire from many goroutines that
// hold their reservations for overlapping windows and asserts the
// instantaneous per-shard occupancy never exceeds a fair share. With the
// old pick-then-increment pattern a burst of G goroutines could land G
// reservations on one shard; with atomic reservation the scan always
// sees earlier winners, so occupancy stays near ceil(holders/shards).
func TestAcquireBoundedImbalance(t *testing.T) {
	const (
		shards     = 4
		goroutines = 16
		rounds     = 200
	)
	counters := make([]atomic.Int64, shards)
	at := func(i int) *atomic.Int64 { return &counters[i] }

	var peak atomic.Int64
	var start, wg sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Wait()
			for r := 0; r < rounds; r++ {
				idx := Acquire(shards, g+r, at)
				if v := counters[idx].Load(); v > peak.Load() {
					peak.Store(v)
				}
				counters[idx].Add(-1)
			}
		}(g)
	}
	start.Done()
	wg.Wait()
	// Fair share is goroutines/shards = 4 concurrent holders per shard;
	// allow scan-window slack but reject pile-ups near goroutine count.
	if limit := int64(goroutines/shards + 3); peak.Load() > limit {
		t.Errorf("peak per-shard occupancy %d exceeds bound %d", peak.Load(), limit)
	}
	for i := range counters {
		if v := counters[i].Load(); v != 0 {
			t.Errorf("shard %d left with occupancy %d after release", i, v)
		}
	}
}
