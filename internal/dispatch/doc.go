// Package dispatch holds the shard-selection policies shared by the
// supervisor pools (sdrad.Pool, httpd.Pool) and the asynchronous
// submission layer: least-loaded selection with a rotating round-robin
// tiebreak, in two forms.
//
// LeastLoaded is the pure observation: scan the load values, return the
// minimum, rotate ties away from index 0. It is correct whenever the
// load signal is maintained elsewhere (e.g. queue depths that their own
// submit path increments atomically).
//
// Acquire is observation plus reservation: it increments the winning
// shard's occupancy counter atomically with the pick (CAS, rescan on
// conflict), so every concurrent Acquire observes earlier winners. Use
// it when the caller itself maintains the occupancy counter — picking
// first and incrementing later opens a window in which a burst of
// callers all see the same idle shard and pile onto it (the pick/runOn
// race fixed in PR 5; the pool dispatch hammer tests pin the bounded
// imbalance this guarantees).
//
// Invariant for both: with n > 0 shards the returned index is always in
// [0, n); load reads are instantaneous snapshots, never locks.
package dispatch
