// Package dispatch holds the shard-selection policy shared by the
// supervisor pools (sdrad.Pool, httpd.Pool): least-loaded with a
// rotating round-robin tiebreak.
package dispatch

// LeastLoaded returns the index in [0, n) with the smallest load,
// scanning from start so that ties rotate instead of piling onto index
// 0. load is read without synchronization (instantaneous snapshots are
// fine for dispatch). n must be > 0.
func LeastLoaded(n int, start int, load func(int) int64) int {
	start %= n
	if start < 0 {
		start += n
	}
	best, bestLoad := start, int64(1)<<62
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if l := load(idx); l < bestLoad {
			best, bestLoad = idx, l
			if l == 0 {
				break
			}
		}
	}
	return best
}
