package dispatch

import "sync/atomic"

// LeastLoaded returns the index in [0, n) with the smallest load,
// scanning from start so that ties rotate instead of piling onto index
// 0. load is read without synchronization (instantaneous snapshots are
// fine for dispatch). n must be > 0.
//
// LeastLoaded only observes; it does not reserve. A caller that
// increments an occupancy counter *after* picking opens a window where
// concurrent pickers all see the same idle shard and pile onto it. Use
// Acquire when the load values are the caller's own occupancy counters.
func LeastLoaded(n int, start int, load func(int) int64) int {
	start %= n
	if start < 0 {
		start += n
	}
	best, bestLoad := start, int64(1)<<62
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if l := load(idx); l < bestLoad {
			best, bestLoad = idx, l
			if l == 0 {
				break
			}
		}
	}
	return best
}

// Acquire picks the least-loaded shard (same scan and tiebreak as
// LeastLoaded over the counters' current values) and atomically
// increments the winner's counter in one step, so the reservation is
// visible to every concurrent Acquire before it scans. This closes the
// pick-then-increment race: two goroutines that both observe shard i
// idle cannot both reserve it at load 0 — the CAS admits one and sends
// the loser back to rescan against the updated counts. The caller must
// decrement the returned shard's counter when the work finishes.
func Acquire(n int, start int, counter func(int) *atomic.Int64) int {
	for {
		idx := LeastLoaded(n, start, func(i int) int64 { return counter(i).Load() })
		c := counter(idx)
		cur := c.Load()
		if c.CompareAndSwap(cur, cur+1) {
			return idx
		}
		// Lost a race on this shard's counter: its load changed under
		// us, so the pick may be stale. Rescan.
	}
}
