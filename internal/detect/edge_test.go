package detect

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/stack"
)

// TestUnknownMechanismAddIsIgnored pins the out-of-range contract: an
// Add with a mechanism beyond the counter array neither panics nor
// corrupts any in-range counter.
func TestUnknownMechanismAddIsIgnored(t *testing.T) {
	var c Counters
	c.Add(MechHeapCanary)
	before := c.Total()
	for _, m := range []Mechanism{MechSegfault + 1, Mechanism(100), Mechanism(255)} {
		c.Add(m)
		if c.Count(m) != 0 {
			t.Errorf("Count(%v) = %d after out-of-range Add", m, c.Count(m))
		}
	}
	if c.Total() != before {
		t.Errorf("out-of-range Add changed Total: %d -> %d", before, c.Total())
	}
	if c.Count(MechHeapCanary) != 1 {
		t.Error("in-range counter corrupted by out-of-range Add")
	}
}

// TestCounterSaturation exercises the counters in the uint64 extreme:
// heavy recording never wraps Total below a component counter, and a
// counter holding MaxUint64-adjacent values still sums without losing
// the other mechanisms (overflow of the sum is Go-defined wraparound;
// the per-mechanism counts must stay exact).
func TestCounterSaturation(t *testing.T) {
	var c Counters
	const n = 1 << 16
	for i := 0; i < n; i++ {
		c.Add(MechDomainViolation)
		c.Add(MechSegfault)
	}
	if c.Count(MechDomainViolation) != n || c.Count(MechSegfault) != n {
		t.Fatalf("counts %d/%d, want %d", c.Count(MechDomainViolation), c.Count(MechSegfault), n)
	}
	if c.Total() != 2*n {
		t.Errorf("Total = %d, want %d", c.Total(), 2*n)
	}
	if uint64(2*n) >= math.MaxUint64/2 {
		t.Fatal("test invariant broken")
	}
	c.Reset()
	if c.Total() != 0 || c.Count(MechDomainViolation) != 0 {
		t.Error("Reset left residue")
	}
}

// TestRecordNonDetectionErrors: application errors, nil, and wrapped
// non-memory errors classify as MechNone and are never counted — the
// zero-request-window analogue for the detection ledger.
func TestRecordNonDetectionErrors(t *testing.T) {
	var c Counters
	for _, err := range []error{
		nil,
		errors.New("application error"),
		fmt.Errorf("wrapped: %w", errors.New("still not a detection")),
	} {
		if m := c.Record(err); m != MechNone {
			t.Errorf("Record(%v) = %v, want MechNone", err, m)
		}
	}
	if c.Total() != 0 {
		t.Errorf("non-detections were counted: total %d", c.Total())
	}
}

// TestClassifyDeeplyWrapped: classification must see through arbitrary
// fmt.Errorf wrapping for every substrate error family.
func TestClassifyDeeplyWrapped(t *testing.T) {
	cases := []struct {
		err  error
		want Mechanism
	}{
		{fmt.Errorf("a: %w", fmt.Errorf("b: %w", stack.ErrStackSmash)), MechStackCanary},
		{fmt.Errorf("a: %w", fmt.Errorf("b: %w", alloc.ErrHeapCorruption)), MechHeapCanary},
		{fmt.Errorf("x: %w", &mem.Fault{Kind: mem.FaultPkey}), MechDomainViolation},
		{fmt.Errorf("x: %w", &mem.Fault{Kind: mem.FaultProt}), MechGuardPage},
		{fmt.Errorf("x: %w", &mem.Fault{Kind: mem.FaultUnmapped}), MechSegfault},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestUnknownFaultKindClassifiesAsNone: a mem.Fault with an
// out-of-range kind is not silently promoted to some mechanism.
func TestUnknownFaultKindClassifiesAsNone(t *testing.T) {
	if got := Classify(&mem.Fault{Kind: 99}); got != MechNone {
		t.Errorf("Classify(unknown fault kind) = %v, want MechNone", got)
	}
}

// TestUnknownMechanismString: the fallback rendering names the raw
// value instead of aliasing a real mechanism.
func TestUnknownMechanismString(t *testing.T) {
	s := Mechanism(42).String()
	if !strings.Contains(s, "42") {
		t.Errorf("Mechanism(42).String() = %q", s)
	}
}
