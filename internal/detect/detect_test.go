package detect

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/stack"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Mechanism
	}{
		{"nil", nil, MechNone},
		{"plain error", errors.New("boom"), MechNone},
		{"pkey fault", &mem.Fault{Kind: mem.FaultPkey, Addr: 0x1000}, MechDomainViolation},
		{"prot fault", &mem.Fault{Kind: mem.FaultProt, Addr: 0x2000}, MechGuardPage},
		{"unmapped fault", &mem.Fault{Kind: mem.FaultUnmapped, Addr: 0}, MechSegfault},
		{"wrapped pkey fault", fmt.Errorf("handler: %w", &mem.Fault{Kind: mem.FaultPkey}), MechDomainViolation},
		{"stack smash", stack.ErrStackSmash, MechStackCanary},
		{"wrapped stack smash", fmt.Errorf("pop: %w", stack.ErrStackSmash), MechStackCanary},
		{"heap corruption", alloc.ErrHeapCorruption, MechHeapCanary},
		{"wrapped heap corruption", fmt.Errorf("free: %w", alloc.ErrHeapCorruption), MechHeapCanary},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.err); got != tc.want {
				t.Errorf("Classify = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestIsViolation(t *testing.T) {
	if IsViolation(nil) {
		t.Error("nil is not a violation")
	}
	if IsViolation(errors.New("app error")) {
		t.Error("plain error is not a violation")
	}
	if !IsViolation(&mem.Fault{Kind: mem.FaultPkey}) {
		t.Error("pkey fault should be a violation")
	}
	if !IsViolation(stack.ErrStackSmash) {
		t.Error("stack smash should be a violation")
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.Record(&mem.Fault{Kind: mem.FaultPkey})
	c.Record(&mem.Fault{Kind: mem.FaultPkey})
	c.Record(stack.ErrStackSmash)
	c.Record(nil)                 // not counted
	c.Record(errors.New("other")) // not counted
	if got := c.Count(MechDomainViolation); got != 2 {
		t.Errorf("domain violations = %d, want 2", got)
	}
	if got := c.Count(MechStackCanary); got != 1 {
		t.Errorf("stack canaries = %d, want 1", got)
	}
	if got := c.Total(); got != 3 {
		t.Errorf("Total = %d, want 3", got)
	}
	c.Reset()
	if c.Total() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestCountOutOfRange(t *testing.T) {
	var c Counters
	if got := c.Count(Mechanism(200)); got != 0 {
		t.Errorf("Count(invalid) = %d, want 0", got)
	}
}

func TestMechanismStrings(t *testing.T) {
	for m := MechNone; m <= MechSegfault; m++ {
		if m.String() == "" {
			t.Errorf("empty string for mechanism %d", m)
		}
	}
	if Mechanism(99).String() == "" {
		t.Error("unknown mechanism should render")
	}
}
