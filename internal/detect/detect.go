// Package detect classifies memory-error signals into the detection
// mechanisms SDRaD relies on.
//
// The paper (§II) requires "pre-existing detection mechanisms, such as
// stack canaries and domain violations" to trigger secure rewind. This
// package is the glue: it maps the error values produced by the substrate
// (mem faults, allocator canaries, stack canaries) onto a Mechanism enum
// and keeps per-mechanism counters that the experiment harness reports.
package detect

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/stack"
)

// Mechanism identifies which detector fired.
type Mechanism uint8

// Detection mechanisms, in the order the paper discusses them.
const (
	// MechNone: the error was not a memory-safety detection.
	MechNone Mechanism = iota
	// MechDomainViolation: a PKU fault — an access crossed a domain
	// boundary (SEGV_PKUERR).
	MechDomainViolation
	// MechStackCanary: a smashed stack canary (__stack_chk_fail).
	MechStackCanary
	// MechHeapCanary: heap chunk canary/redzone mismatch.
	MechHeapCanary
	// MechGuardPage: access to a guard page (stack overflow) or other
	// page-protection violation (SEGV_ACCERR).
	MechGuardPage
	// MechSegfault: access to unmapped memory (SEGV_MAPERR), e.g. a null
	// or wild pointer dereference.
	MechSegfault
)

// String implements fmt.Stringer.
func (m Mechanism) String() string {
	switch m {
	case MechNone:
		return "none"
	case MechDomainViolation:
		return "domain-violation"
	case MechStackCanary:
		return "stack-canary"
	case MechHeapCanary:
		return "heap-canary"
	case MechGuardPage:
		return "guard-page"
	case MechSegfault:
		return "segfault"
	default:
		return fmt.Sprintf("Mechanism(%d)", uint8(m))
	}
}

// Classify maps an error from the substrate to the detection mechanism
// that produced it. MechNone means err is not a memory-safety signal.
func Classify(err error) Mechanism {
	if err == nil {
		return MechNone
	}
	if f, ok := mem.IsFault(err); ok {
		switch f.Kind {
		case mem.FaultPkey:
			return MechDomainViolation
		case mem.FaultProt:
			return MechGuardPage
		case mem.FaultUnmapped:
			return MechSegfault
		}
	}
	if errors.Is(err, stack.ErrStackSmash) {
		return MechStackCanary
	}
	if errors.Is(err, alloc.ErrHeapCorruption) {
		return MechHeapCanary
	}
	return MechNone
}

// IsViolation reports whether err is any memory-safety detection, i.e.
// an event that should trigger secure rewind of the faulting domain.
func IsViolation(err error) bool { return Classify(err) != MechNone }

// Counters tallies detections per mechanism. The zero value is ready to
// use. Not safe for concurrent use.
type Counters struct {
	counts [MechSegfault + 1]uint64
}

// Record classifies err and increments the matching counter, returning
// the mechanism. MechNone is not counted.
func (c *Counters) Record(err error) Mechanism {
	m := Classify(err)
	c.Add(m)
	return m
}

// Add increments the counter for an already-classified mechanism.
// MechNone is not counted.
func (c *Counters) Add(m Mechanism) {
	if m != MechNone && int(m) < len(c.counts) {
		c.counts[m]++
	}
}

// Count returns the number of detections recorded for mechanism m.
func (c *Counters) Count(m Mechanism) uint64 {
	if int(m) >= len(c.counts) {
		return 0
	}
	return c.counts[m]
}

// Total returns the number of detections across all mechanisms.
func (c *Counters) Total() uint64 {
	var t uint64
	for _, n := range c.counts {
		t += n
	}
	return t
}

// Reset zeroes all counters.
func (c *Counters) Reset() { c.counts = [MechSegfault + 1]uint64{} }
