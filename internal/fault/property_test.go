package fault

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/workload"
)

// TestSystemConsistencyUnderRandomOps drives a random interleaving of
// domain operations — creates, enters with benign work, injected attacks,
// deinits — and checks the global invariants afterwards: no leaked pages,
// no leaked keys, accurate violation accounting, and a usable system.
func TestSystemConsistencyUnderRandomOps(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		s := core.NewSystem(core.DefaultConfig())
		campaign := NewCampaign(seed)

		live := map[core.UDI]bool{}
		var expectedViolations uint64
		nextUDI := core.UDI(1)

		for op := 0; op < 120; op++ {
			switch rng.Intn(5) {
			case 0: // create
				if len(live) >= 10 {
					continue
				}
				udi := nextUDI
				nextUDI++
				if _, err := s.InitDomain(udi, core.DomainConfig{HeapPages: 2, StackPages: 2}); err != nil {
					return false
				}
				live[udi] = true
			case 1, 2: // benign work
				udi := pick(rng, live)
				if udi == 0 {
					continue
				}
				err := s.Enter(udi, func(c *core.DomainCtx) error {
					p := c.MustAlloc(rng.Intn(256) + 1)
					c.MustStore(p, []byte{1, 2, 3})
					c.MustFree(p)
					return nil
				})
				if err != nil {
					return false
				}
			case 3: // attack
				udi := pick(rng, live)
				if udi == 0 {
					continue
				}
				kind := campaign.Next()
				err := s.Enter(udi, func(c *core.DomainCtx) error {
					Inject(c, kind, 0)
					return nil
				})
				if _, ok := core.IsViolation(err); !ok {
					return false
				}
				expectedViolations++
			case 4: // deinit
				udi := pick(rng, live)
				if udi == 0 {
					continue
				}
				if err := s.DeinitDomain(udi); err != nil {
					return false
				}
				delete(live, udi)
			}
		}

		// Accounting invariant.
		var got uint64
		for udi := range live {
			d, err := s.Domain(udi)
			if err != nil {
				return false
			}
			got += d.Stats().Violations
		}
		// Violations of deinited domains are gone from per-domain stats but
		// stay in the global counters.
		if s.Counters().Total() != expectedViolations {
			return false
		}
		_ = got

		// Teardown invariant: removing every domain frees every page.
		for udi := range live {
			if err := s.DeinitDomain(udi); err != nil {
				return false
			}
		}
		if s.Mem().MappedPages() != 0 {
			return false
		}
		// All 14 keys are available again.
		for i := 0; i < 14; i++ {
			if _, err := s.CreateDomain(core.DomainConfig{HeapPages: 1, StackPages: 1}); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func pick(rng *workload.RNG, live map[core.UDI]bool) core.UDI {
	if len(live) == 0 {
		return 0
	}
	n := rng.Intn(len(live))
	for udi := range live {
		if n == 0 {
			return udi
		}
		n--
	}
	return 0
}

// TestDomainDataIsolationProperty: data written by one domain is never
// observable or corruptible from a sibling, across random work orders.
func TestDomainDataIsolationProperty(t *testing.T) {
	f := func(seed uint64, payload []byte) bool {
		if len(payload) == 0 {
			payload = []byte{0xaa}
		}
		if len(payload) > 1024 {
			payload = payload[:1024]
		}
		s := core.NewSystem(core.DefaultConfig())
		if _, err := s.InitDomain(1, core.DomainConfig{}); err != nil {
			return false
		}
		if _, err := s.InitDomain(2, core.DomainConfig{}); err != nil {
			return false
		}
		var addr mem.Addr
		if err := s.Enter(1, func(c *core.DomainCtx) error {
			addr = c.MustAlloc(len(payload))
			c.MustStore(addr, payload)
			return nil
		}); err != nil {
			return false
		}
		// Sibling read and write must both violate.
		rerr := s.Enter(2, func(c *core.DomainCtx) error {
			buf := make([]byte, len(payload))
			c.MustLoad(addr, buf)
			return nil
		})
		werr := s.Enter(2, func(c *core.DomainCtx) error {
			c.MustStore(addr, make([]byte, len(payload)))
			return nil
		})
		if _, ok := core.IsViolation(rerr); !ok {
			return false
		}
		if _, ok := core.IsViolation(werr); !ok {
			return false
		}
		// Data unchanged.
		got, err := s.CopyFromDomain(addr, len(payload))
		if err != nil {
			return false
		}
		for i := range payload {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRewindAlwaysRestoresEntryState: whatever a domain does before
// violating, the next entry sees a pristine heap.
func TestRewindAlwaysRestoresEntryState(t *testing.T) {
	f := func(allocs []uint16, kindRaw uint8) bool {
		s := core.NewSystem(core.DefaultConfig())
		if _, err := s.InitDomain(1, core.DomainConfig{}); err != nil {
			return false
		}
		kinds := Kinds()
		kind := kinds[int(kindRaw)%len(kinds)]
		err := s.Enter(1, func(c *core.DomainCtx) error {
			for _, a := range allocs {
				n := int(a)%512 + 1
				p := c.MustAlloc(n)
				c.MustStore(p, make([]byte, n))
			}
			Inject(c, kind, 0)
			return nil
		})
		if _, ok := core.IsViolation(err); !ok {
			return false
		}
		d, derr := s.Domain(1)
		if derr != nil {
			return false
		}
		st := d.Heap().Stats()
		return st.LiveChunks == 0 && st.LiveBytes == 0 && d.Heap().CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestErrorsAreDistinguishable(t *testing.T) {
	// The public error taxonomy: sentinel errors never alias.
	sentinels := []error{core.ErrDomainExists, core.ErrNoDomain, core.ErrDomainActive, core.ErrNotEntered, core.ErrQuarantined}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Errorf("sentinel %v aliases %v", a, b)
			}
		}
	}
}
