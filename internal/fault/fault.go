// Package fault injects the memory-corruption bug classes the paper's
// threat model covers into running domains: linear heap overflows, stack
// smashes, wild writes, out-of-bounds reads, cross-domain accesses, and
// invalid frees.
//
// The injectors are the reproduction's stand-in for real CVEs in
// Memcached/NGINX/OpenSSL: each performs, through a *core.DomainCtx, the
// exact memory access pattern of its bug class, so the detection and
// rewind machinery is exercised end to end. Campaigns drive deterministic
// sequences of attacks for the containment experiment (E4).
package fault

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/workload"
)

// Kind identifies a bug class.
type Kind uint8

// Bug classes.
const (
	// HeapOverflow writes past the end of a heap allocation (detected by
	// the chunk redzone at free/exit).
	HeapOverflow Kind = iota + 1
	// StackSmash overflows a stack buffer into the frame canary.
	StackSmash
	// WildWrite stores through a corrupted pointer to an unmapped
	// address.
	WildWrite
	// OOBRead reads far past an allocation (Heartbleed-style).
	OOBRead
	// CrossDomainWrite attempts to write memory of another domain
	// (detected immediately by PKU).
	CrossDomainWrite
	// DoubleFree frees an allocation twice.
	DoubleFree
	// NullDeref dereferences address zero.
	NullDeref
	// UseAfterFree writes through a dangling pointer into a freed chunk,
	// running over its redzone (detected by the exit integrity sweep).
	UseAfterFree
	// FreedHeaderSmash overwrites the freed-marker canary word of a freed
	// chunk's header — the tcache-poisoning shape (detected by the exit
	// integrity sweep).
	FreedHeaderSmash
	// Crash panics inside the domain, modelling an in-domain process
	// crash (e.g. a compiled-in abort); the supervisor converts it to a
	// contained violation.
	Crash
)

// Kinds returns all bug classes.
func Kinds() []Kind {
	return []Kind{HeapOverflow, StackSmash, WildWrite, OOBRead, CrossDomainWrite, DoubleFree, NullDeref, UseAfterFree, FreedHeaderSmash, Crash}
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case HeapOverflow:
		return "heap-overflow"
	case StackSmash:
		return "stack-smash"
	case WildWrite:
		return "wild-write"
	case OOBRead:
		return "oob-read"
	case CrossDomainWrite:
		return "cross-domain-write"
	case DoubleFree:
		return "double-free"
	case NullDeref:
		return "null-deref"
	case UseAfterFree:
		return "use-after-free"
	case FreedHeaderSmash:
		return "freed-header-smash"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ErrInjected tags the synthetic condition that triggered an injection
// (for injections that surface through explicit checks rather than
// hardware faults).
var ErrInjected = errors.New("fault: injected memory error")

// Inject performs the bug class inside the current domain. For fault-
// based classes it does not return: execution unwinds to the domain
// boundary. Heap-overflow and double-free style bugs may return normally
// and be caught later (at free or at the exit integrity sweep) —
// matching how such bugs behave on real hardware.
//
// victim is used by CrossDomainWrite as the foreign address to attack;
// pass 0 to attack a plausible foreign address.
func Inject(c *core.DomainCtx, kind Kind, victim mem.Addr) {
	switch kind {
	case HeapOverflow:
		p := c.MustAlloc(32)
		evil := make([]byte, 32+16) // runs 16 bytes into the redzone
		for i := range evil {
			evil[i] = 0x41
		}
		c.MustStore(p, evil)
	case StackSmash:
		// WithFrame validates the canary on pop and traps; the injected
		// store overruns a 64-byte local buffer.
		//lint:errclass the injected smash must trap inside WithFrame; the violation surfaces via the enclosing Enter, not this return
		_ = c.WithFrame(64, func(base mem.Addr) error {
			c.MustStore(base, make([]byte, 64+8))
			return nil
		})
	case WildWrite:
		c.MustStore64(0xdead_beef_000, 0x41414141)
	case OOBRead:
		p := c.MustAlloc(64)
		// Read 64 KiB from a 64-byte buffer: the classic Heartbleed
		// shape. The read runs off the domain heap into unmapped or
		// foreign pages and faults.
		buf := make([]byte, 64*1024)
		c.MustLoad(p, buf)
	case CrossDomainWrite:
		if victim == 0 {
			// Without a concrete victim the attack degenerates to a wild
			// write into unmapped space.
			victim = 0xbad_d0d0_000
		}
		c.MustStore64(victim, 0x41414141)
	case DoubleFree:
		p := c.MustAlloc(16)
		c.MustFree(p)
		if err := c.Free(p); err != nil {
			// Invalid free: glibc would abort; we raise a violation.
			c.Violate(fmt.Errorf("%w: double free: %v", ErrInjected, err))
		}
	case NullDeref:
		c.MustStore64(0, 1)
	case UseAfterFree:
		// Free an allocation, then store through the dangling pointer.
		// The write stays inside the domain's own pages (no PKU fault)
		// but clobbers the freed chunk's redzone, which the exit
		// integrity sweep validates against the live canary.
		p := c.MustAlloc(64)
		c.MustFree(p)
		stale := make([]byte, 64+8)
		for i := range stale {
			stale[i] = 0x55
		}
		c.MustStore(p, stale)
	case FreedHeaderSmash:
		// Overwrite the freed-marker canary word sitting 8 bytes before
		// the payload — the tcache-poisoning / freelist-hijack shape. The
		// sweep sees neither the live canary nor the freed marker.
		p := c.MustAlloc(32)
		c.MustFree(p)
		c.MustStore64(p-8, 0x4141414141414141)
	case Crash:
		panic("fault: injected worker crash")
	default:
		c.Violate(fmt.Errorf("%w: unknown kind %d", ErrInjected, kind))
	}
}

// Campaign drives a deterministic attack sequence.
type Campaign struct {
	rng   *workload.RNG
	kinds []Kind
}

// NewCampaign builds a campaign over the given bug classes (all classes
// if none given).
func NewCampaign(seed uint64, kinds ...Kind) *Campaign {
	if len(kinds) == 0 {
		kinds = Kinds()
	}
	return &Campaign{rng: workload.NewRNG(seed), kinds: kinds}
}

// Next returns the next bug class to inject.
func (c *Campaign) Next() Kind {
	return c.kinds[c.rng.Intn(len(c.kinds))]
}
