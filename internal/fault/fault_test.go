package fault

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/mem"
)

func newSys(t *testing.T) *core.System {
	t.Helper()
	s := core.NewSystem(core.DefaultConfig())
	if _, err := s.InitDomain(1, core.DomainConfig{}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEveryKindIsDetectedAndRewound(t *testing.T) {
	// Allowed mechanisms per kind. OOBRead may land on unmapped space or
	// on a guard page depending on heap layout — both are valid
	// detections of the same bug.
	expected := map[Kind][]detect.Mechanism{
		HeapOverflow:     {detect.MechHeapCanary},
		StackSmash:       {detect.MechStackCanary},
		WildWrite:        {detect.MechSegfault},
		OOBRead:          {detect.MechSegfault, detect.MechGuardPage},
		CrossDomainWrite: {detect.MechDomainViolation},
		DoubleFree:       {detect.MechSegfault}, // explicit Violate classifies as generic
		NullDeref:        {detect.MechSegfault},
		UseAfterFree:     {detect.MechHeapCanary},
		FreedHeaderSmash: {detect.MechHeapCanary},
		Crash:            {detect.MechSegfault}, // in-domain panic counts as crash-class
	}
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			s := newSys(t)
			// Provide a real foreign victim for the cross-domain attack.
			if _, err := s.InitDomain(2, core.DomainConfig{}); err != nil {
				t.Fatal(err)
			}
			var victim mem.Addr
			if err := s.Enter(2, func(c *core.DomainCtx) error {
				victim = c.MustAlloc(16)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			err := s.Enter(1, func(c *core.DomainCtx) error {
				Inject(c, k, victim)
				return nil
			})
			v, ok := core.IsViolation(err)
			if !ok {
				t.Fatalf("%v: err = %v, want violation", k, err)
			}
			found := false
			for _, want := range expected[k] {
				if v.Mechanism == want {
					found = true
				}
			}
			if !found {
				t.Errorf("%v: mechanism = %v, want one of %v", k, v.Mechanism, expected[k])
			}
			// The domain must be reusable after the attack.
			if err := s.Enter(1, func(c *core.DomainCtx) error {
				p := c.MustAlloc(16)
				c.MustStore(p, []byte("ok"))
				return nil
			}); err != nil {
				t.Errorf("%v: domain unusable after rewind: %v", k, err)
			}
		})
	}
}

func TestCrossDomainWriteHitsVictim(t *testing.T) {
	s := newSys(t)
	if _, err := s.InitDomain(2, core.DomainConfig{}); err != nil {
		t.Fatal(err)
	}
	var victim mem.Addr
	if err := s.Enter(2, func(c *core.DomainCtx) error {
		victim = c.MustAlloc(32)
		c.MustStore(victim, []byte("victim data"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	err := s.Enter(1, func(c *core.DomainCtx) error {
		Inject(c, CrossDomainWrite, victim)
		return nil
	})
	v, ok := core.IsViolation(err)
	if !ok || v.Mechanism != detect.MechDomainViolation {
		t.Fatalf("err = %v, want domain violation", err)
	}
	// Victim data intact.
	got, err := s.CopyFromDomain(victim, 11)
	if err != nil || string(got) != "victim data" {
		t.Errorf("victim = %q, %v", got, err)
	}
}

func TestInjectUnknownKind(t *testing.T) {
	s := newSys(t)
	err := s.Enter(1, func(c *core.DomainCtx) error {
		Inject(c, Kind(99), 0)
		return nil
	})
	if _, ok := core.IsViolation(err); !ok {
		t.Errorf("unknown kind err = %v, want violation", err)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a := NewCampaign(42)
	b := NewCampaign(42)
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed campaigns diverged")
		}
	}
}

func TestCampaignRestrictedKinds(t *testing.T) {
	c := NewCampaign(1, HeapOverflow, StackSmash)
	for i := 0; i < 100; i++ {
		k := c.Next()
		if k != HeapOverflow && k != StackSmash {
			t.Fatalf("campaign produced %v outside its kind set", k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range Kinds() {
		if k.String() == "" {
			t.Errorf("empty string for %d", k)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should render")
	}
}
