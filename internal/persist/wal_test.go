package persist

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xab}, 4096),
	}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	got, valid, err := ScanFrames(buf)
	if err != nil {
		t.Fatalf("ScanFrames: %v", err)
	}
	if valid != len(buf) {
		t.Fatalf("valid = %d, want %d", valid, len(buf))
	}
	if len(got) != len(payloads) {
		t.Fatalf("got %d frames, want %d", len(got), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(got[i], p) {
			t.Errorf("frame %d mismatch", i)
		}
	}
}

func TestDecodeFrameTorn(t *testing.T) {
	full := AppendFrame(nil, []byte("hello world"))
	for cut := 0; cut < len(full); cut++ {
		_, _, err := DecodeFrame(full[:cut])
		if !errors.Is(err, ErrTornFrame) {
			t.Fatalf("cut=%d: err = %v, want ErrTornFrame", cut, err)
		}
	}
}

func TestDecodeFrameBadCRC(t *testing.T) {
	full := AppendFrame(nil, []byte("hello world"))
	for i := FrameHeaderSize; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x01
		_, _, err := DecodeFrame(mut)
		if !errors.Is(err, ErrBadCRC) {
			t.Fatalf("flip@%d: err = %v, want ErrBadCRC", i, err)
		}
	}
	// Flipping a CRC header byte must also fail the checksum.
	mut := append([]byte(nil), full...)
	mut[4] ^= 0x80
	if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("crc flip: err = %v, want ErrBadCRC", err)
	}
}

func TestDecodeFrameOversizedLength(t *testing.T) {
	b := make([]byte, FrameHeaderSize)
	b[0], b[1], b[2], b[3] = 0xff, 0xff, 0xff, 0xff
	_, _, err := DecodeFrame(b)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestScanFramesTornTail(t *testing.T) {
	a := AppendFrame(nil, []byte("committed-1"))
	buf := append([]byte(nil), a...)
	buf = AppendFrame(buf, []byte("committed-2"))
	whole := len(buf)
	buf = AppendFrame(buf, []byte("torn-by-crash"))
	buf = buf[:whole+5] // crash mid-append

	payloads, valid, err := ScanFrames(buf)
	if !errors.Is(err, ErrTornFrame) {
		t.Fatalf("err = %v, want ErrTornFrame", err)
	}
	if valid != whole {
		t.Fatalf("valid = %d, want %d", valid, whole)
	}
	if len(payloads) != 2 {
		t.Fatalf("got %d committed payloads, want 2", len(payloads))
	}
}

func TestBatchRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{},
		{[]byte("one")},
		{[]byte("a"), {}, []byte("ccc")},
	}
	for ci, records := range cases {
		payload := EncodeBatch(records)
		got, err := DecodeBatch(payload)
		if err != nil {
			t.Fatalf("case %d: DecodeBatch: %v", ci, err)
		}
		if len(got) != len(records) {
			t.Fatalf("case %d: got %d records, want %d", ci, len(got), len(records))
		}
		for i := range records {
			if !bytes.Equal(got[i], records[i]) {
				t.Errorf("case %d record %d mismatch", ci, i)
			}
		}
	}
}

func TestDecodeBatchMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":           {},
		"short header":    {1, 0},
		"absurd count":    {0xff, 0xff, 0xff, 0xff},
		"record torn":     append(EncodeBatch([][]byte{[]byte("abcdef")})[:8], 0x01),
		"trailing":        append(EncodeBatch([][]byte{[]byte("x")}), 0x00),
		"count too large": {2, 0, 0, 0, 1, 0, 0, 0, 'x'},
	}
	for name, payload := range cases {
		if _, err := DecodeBatch(payload); !errors.Is(err, ErrBadBatch) {
			t.Errorf("%s: err = %v, want ErrBadBatch", name, err)
		}
	}
}

func TestSnapshotPayloadRoundTrip(t *testing.T) {
	pages := map[uint64][]byte{
		0x10: bytes.Repeat([]byte{1}, 4096),
		0x12: bytes.Repeat([]byte{2}, 4096),
		0x11: bytes.Repeat([]byte{3}, 4096),
	}
	payload := encodeSnapshotPayload([]byte("meta-blob"), pages)
	meta, got, err := decodeSnapshotPayload(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if string(meta) != "meta-blob" {
		t.Fatalf("meta = %q", meta)
	}
	if len(got) != 3 {
		t.Fatalf("got %d pages, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].PN >= got[i].PN {
			t.Fatalf("pages not ascending: %#x then %#x", got[i-1].PN, got[i].PN)
		}
	}
	for _, p := range got {
		if !bytes.Equal(p.Data, pages[p.PN]) {
			t.Errorf("page %#x contents mismatch", p.PN)
		}
	}
}

func TestSnapshotPayloadMalformed(t *testing.T) {
	good := encodeSnapshotPayload([]byte("m"), map[uint64][]byte{7: {1, 2, 3}})
	cases := map[string][]byte{
		"empty":        {},
		"meta torn":    good[:3],
		"page torn":    good[:len(good)-1],
		"trailing":     append(append([]byte(nil), good...), 0),
		"absurd count": {0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff},
	}
	for name, payload := range cases {
		if _, _, err := decodeSnapshotPayload(payload); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}
