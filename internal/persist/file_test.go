package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

func page(fill byte) []byte { return bytes.Repeat([]byte{fill}, 4096) }

func TestFileStoreAppendRecover(t *testing.T) {
	dir := t.TempDir()
	var pm metrics.Persist
	st, err := OpenFile(dir, FileConfig{Fsync: true, Metrics: &pm})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if err := st.Append([][]byte{[]byte("r1"), []byte("r2")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := st.Append([][]byte{[]byte("r3")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if s := pm.Snapshot(); s.Appends != 2 || s.Fsyncs != 2 {
		t.Fatalf("metrics = %+v, want 2 appends 2 fsyncs", s)
	}

	st2, err := OpenFile(dir, FileConfig{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := st2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	snap, records, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if snap != nil {
		t.Fatalf("unexpected snapshot")
	}
	want := []string{"r1", "r2", "r3"}
	if len(records) != len(want) {
		t.Fatalf("got %d records, want %d", len(records), len(want))
	}
	for i, w := range want {
		if string(records[i]) != w {
			t.Errorf("record %d = %q, want %q", i, records[i], w)
		}
	}
	if info := st2.Info(); info.Batches != 2 || info.TornBytes != 0 || info.HadSnapshot {
		t.Fatalf("info = %+v", info)
	}
}

func TestFileStoreKillTearsTail(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenFile(dir, FileConfig{Fsync: true})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if err := st.Append([][]byte{[]byte("committed")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	st.KillNextAppend(0.6)
	if err := st.Append([][]byte{[]byte("torn-away")}); !errors.Is(err, ErrKilled) {
		t.Fatalf("killed append err = %v, want ErrKilled", err)
	}
	// Dead store rejects everything.
	if err := st.Append([][]byte{[]byte("after")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-kill append err = %v, want ErrClosed", err)
	}
	if _, _, err := st.Recover(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-kill recover err = %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var pm metrics.Persist
	st2, err := OpenFile(dir, FileConfig{Metrics: &pm})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := st2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	_, records, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(records) != 1 || string(records[0]) != "committed" {
		t.Fatalf("records = %q, want [committed]", records)
	}
	info := st2.Info()
	if info.TornBytes == 0 {
		t.Fatalf("expected torn tail, info = %+v", info)
	}
	if s := pm.Snapshot(); s.Recoveries != 1 || s.TornTailBytes != uint64(info.TornBytes) {
		t.Fatalf("metrics = %+v vs info %+v", s, info)
	}
	// The truncation repaired the file: appends continue cleanly.
	if err := st2.Append([][]byte{[]byte("next")}); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
}

func TestFileStoreSnapshotSupersedesLog(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenFile(dir, FileConfig{Fsync: true})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if err := st.Append([][]byte{[]byte("pre-snap")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := st.Snapshot([]byte("meta-1"), []SnapshotPage{{PN: 0x10, Data: page(1)}, {PN: 0x11, Data: page(2)}}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if n := st.WALBytes(); n != 0 {
		t.Fatalf("WAL not truncated after snapshot: %d bytes", n)
	}
	if err := st.Append([][]byte{[]byte("post-snap")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Incremental: only 0x11 changed; the backend must keep 0x10.
	if err := st.Snapshot([]byte("meta-2"), []SnapshotPage{{PN: 0x11, Data: page(3)}}); err != nil {
		t.Fatalf("Snapshot 2: %v", err)
	}
	if err := st.Append([][]byte{[]byte("tail")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, err := OpenFile(dir, FileConfig{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := st2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	snap, records, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if snap == nil {
		t.Fatal("no snapshot recovered")
	}
	if string(snap.Meta) != "meta-2" {
		t.Fatalf("meta = %q, want meta-2", snap.Meta)
	}
	if len(snap.Pages) != 2 {
		t.Fatalf("got %d pages, want 2 (cumulative)", len(snap.Pages))
	}
	if snap.Pages[0].PN != 0x10 || !bytes.Equal(snap.Pages[0].Data, page(1)) {
		t.Fatalf("page 0x10 wrong")
	}
	if snap.Pages[1].PN != 0x11 || !bytes.Equal(snap.Pages[1].Data, page(3)) {
		t.Fatalf("page 0x11 not the newer image")
	}
	if len(records) != 1 || string(records[0]) != "tail" {
		t.Fatalf("records = %q, want [tail] (snapshot superseded the rest)", records)
	}
}

func TestFileStoreOversizedAppendRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenFile(dir, FileConfig{})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if err := st.Append([][]byte{[]byte("first")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// One MaxFrameSize record overflows the payload limit once batch
	// framing is added. The decoder would refuse this frame, so the
	// writer must too — before any byte reaches the file.
	if err := st.Append([][]byte{make([]byte, MaxFrameSize)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized append err = %v, want ErrFrameTooLarge", err)
	}
	// The rejection was clean: the store lives on and later commits land.
	if err := st.Append([][]byte{[]byte("second")}); err != nil {
		t.Fatalf("append after rejection: %v", err)
	}

	st2, err := OpenFile(dir, FileConfig{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := st2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	_, records, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(records) != 2 || string(records[0]) != "first" || string(records[1]) != "second" {
		t.Fatalf("records = %q, want [first second]", records)
	}
	if info := st2.Info(); info.TornBytes != 0 {
		t.Fatalf("oversized append left torn bytes: %+v", info)
	}
}

func TestFileStoreRecoveredSnapshotNotAliased(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenFile(dir, FileConfig{})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if err := st.Snapshot([]byte("m"), []SnapshotPage{{PN: 1, Data: page(7)}}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, err := OpenFile(dir, FileConfig{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := st2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	snap, _, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	// A follow-up snapshot with a much longer meta must not trample the
	// recovered snapshot's bytes (both once aliased the same read buffer).
	if err := st2.Snapshot(bytes.Repeat([]byte{'M'}, 4096), nil); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if string(snap.Meta) != "m" {
		t.Fatalf("recovered meta trampled: %q", snap.Meta)
	}
	if len(snap.Pages) != 1 || !bytes.Equal(snap.Pages[0].Data, page(7)) {
		t.Fatal("recovered page bytes trampled by later snapshot")
	}
}

func TestFileStoreCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenFile(dir, FileConfig{})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if err := st.Snapshot([]byte("m"), []SnapshotPage{{PN: 1, Data: page(9)}}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, snapshotName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Unlike a torn WAL tail, a bad snapshot frame is real corruption —
	// the rename committed it atomically — so open refuses.
	if _, err := OpenFile(dir, FileConfig{}); err == nil {
		t.Fatal("open succeeded on corrupt snapshot")
	}
}
