package persist

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the full decode pipeline —
// frame scan, per-frame decode, batch decode — and asserts the decoder
// contract: typed errors, no panics, no over-reads, and truncate-at-
// first-bad-frame consistency. The checked-in corpus under
// testdata/fuzz/FuzzWALDecode covers the crash shapes recovery must
// survive: truncated tails, flipped CRC bytes, oversized length
// fields, and malformed batch payloads behind valid CRCs.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, EncodeBatch(nil)))
	f.Add(AppendFrame(nil, EncodeBatch([][]byte{[]byte("Skey\x00value")})))
	two := AppendFrame(nil, EncodeBatch([][]byte{[]byte("a")}))
	two = AppendFrame(two, EncodeBatch([][]byte{[]byte("b"), []byte("c")}))
	f.Add(two)
	f.Add(two[:len(two)-3])                           // torn tail
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length
	flipped := append([]byte(nil), two...)
	flipped[5] ^= 0x40 // corrupt CRC header
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, valid, err := ScanFrames(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d outside [0,%d]", valid, len(data))
		}
		if err == nil && valid != len(data) {
			t.Fatalf("nil error but valid=%d of %d", valid, len(data))
		}
		if err != nil {
			if !errors.Is(err, ErrTornFrame) && !errors.Is(err, ErrBadCRC) && !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("untyped scan error: %v", err)
			}
			// The rest must decode as frames up to exactly the reported
			// offset: re-scanning the committed prefix is clean.
			re, revalid, rerr := ScanFrames(data[:valid])
			if rerr != nil || revalid != valid || len(re) != len(payloads) {
				t.Fatalf("committed prefix rescan: %d/%d frames, %v", len(re), len(payloads), rerr)
			}
		}
		for _, payload := range payloads {
			records, berr := DecodeBatch(payload)
			if berr != nil {
				if !errors.Is(berr, ErrBadBatch) {
					t.Fatalf("untyped batch error: %v", berr)
				}
				continue
			}
			// Round-trip: re-encoding the decoded records must reproduce
			// the payload byte for byte.
			if !bytes.Equal(EncodeBatch(records), payload) {
				t.Fatalf("batch round-trip mismatch")
			}
		}
	})
}
