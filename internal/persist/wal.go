package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// WAL frame format. Each committed batch is exactly one frame:
//
//	[length u32 LE][crc32 u32 LE][payload length bytes]
//
// length counts payload bytes only; crc32 is IEEE over the payload.
// One frame per batch makes batch atomicity structural: a crash during
// the group commit leaves a torn final frame (short, or with a CRC that
// cannot match its partially written payload), which recovery truncates
// wholesale — committed WAL records are therefore always whole batches.
//
// The frame payload is a batch: [count u32 LE] then count records,
// each [length u32 LE][bytes]. Records are opaque to this package; the
// kvstore layer encodes its mutations into them.

const (
	// FrameHeaderSize is the fixed per-frame overhead in bytes.
	FrameHeaderSize = 8
	// MaxFrameSize bounds one frame's payload, so a corrupt length field
	// can never drive an over-read or an absurd allocation. 64 MiB holds
	// any realistic batch (kvstore values cap at 1 MiB).
	MaxFrameSize = 64 << 20
)

// Typed decode errors. The decoder returns these (wrapped with
// context); it never panics and never reads past the input.
var (
	// ErrTornFrame marks a frame cut short — a header or payload
	// truncated by a crash mid-append. Recovery truncates the log here.
	ErrTornFrame = errors.New("persist: torn frame")
	// ErrBadCRC marks a complete frame whose payload fails its checksum.
	ErrBadCRC = errors.New("persist: frame CRC mismatch")
	// ErrFrameTooLarge marks a length field above MaxFrameSize.
	ErrFrameTooLarge = errors.New("persist: frame length exceeds limit")
	// ErrBadBatch marks a frame payload that does not parse as a record
	// batch.
	ErrBadBatch = errors.New("persist: malformed record batch")
)

// AppendFrame appends one framed payload to dst and returns the
// extended slice.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [FrameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame decodes the first frame of b, returning its payload
// (aliasing b) and the remaining bytes. Errors are typed: ErrTornFrame
// for truncation, ErrFrameTooLarge for an oversized length field,
// ErrBadCRC for checksum failure.
func DecodeFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) < FrameHeaderSize {
		return nil, nil, fmt.Errorf("%w: %d header bytes", ErrTornFrame, len(b))
	}
	n := binary.LittleEndian.Uint32(b[0:])
	if n > MaxFrameSize {
		return nil, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if uint64(len(b)-FrameHeaderSize) < uint64(n) {
		return nil, nil, fmt.Errorf("%w: %d of %d payload bytes", ErrTornFrame, len(b)-FrameHeaderSize, n)
	}
	payload = b[FrameHeaderSize : FrameHeaderSize+int(n)]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(b[4:]); got != want {
		return nil, nil, fmt.Errorf("%w: got %#x want %#x", ErrBadCRC, got, want)
	}
	return payload, b[FrameHeaderSize+int(n):], nil
}

// ScanFrames decodes consecutive frames from the front of b, stopping
// at the first bad one. It returns the valid payloads, the byte offset
// of the first bad frame (== len(b) when every byte parsed), and the
// error that stopped the scan (nil when every byte parsed). Recovery
// truncates the log at valid — the torn-tail rule: everything before
// the first bad frame is committed, everything after it is discarded.
func ScanFrames(b []byte) (payloads [][]byte, valid int, err error) {
	rest := b
	for len(rest) > 0 {
		payload, next, derr := DecodeFrame(rest)
		if derr != nil {
			return payloads, len(b) - len(rest), derr
		}
		payloads = append(payloads, payload)
		rest = next
	}
	return payloads, len(b), nil
}

// EncodeBatch encodes records as one frame payload.
func EncodeBatch(records [][]byte) []byte {
	size := 4
	for _, r := range records {
		size += 4 + len(r)
	}
	out := make([]byte, 0, size)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(records)))
	out = append(out, n[:]...)
	for _, r := range records {
		binary.LittleEndian.PutUint32(n[:], uint32(len(r)))
		out = append(out, n[:]...)
		out = append(out, r...)
	}
	return out
}

// DecodeBatch decodes a frame payload back into its records (aliasing
// payload). A payload that does not parse exactly is ErrBadBatch: the
// CRC already vouched for the bytes, so a malformed batch means a
// writer bug or version skew, not a torn write.
func DecodeBatch(payload []byte) ([][]byte, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadBatch, len(payload))
	}
	count := binary.LittleEndian.Uint32(payload[0:])
	rest := payload[4:]
	// Each record costs at least its 4-byte length prefix, so an honest
	// count is bounded by the remaining bytes — reject before allocating.
	if uint64(count)*4 > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: count %d exceeds payload", ErrBadBatch, count)
	}
	records := make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: record %d header truncated", ErrBadBatch, i)
		}
		n := binary.LittleEndian.Uint32(rest[0:])
		rest = rest[4:]
		if uint64(len(rest)) < uint64(n) {
			return nil, fmt.Errorf("%w: record %d is %d of %d bytes", ErrBadBatch, i, len(rest), n)
		}
		records = append(records, rest[:n])
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadBatch, len(rest))
	}
	return records, nil
}
