// Package persist is the durability engine: a write-ahead log with
// batch-granular group commit, incremental page snapshots, and
// crash-consistent recovery.
//
// The design follows the SDRaD execution model. Mutations are only
// logged after a batch passes the domain integrity sweep and commits,
// so the log records exactly the acknowledged history: a rewind on a
// detected violation aborts the batch before any of its records reach
// the WAL. Group commit aligns with DoBatch boundaries — one framed
// append and at most one fsync per committed batch, never per
// operation — which is what makes fsync-on durability affordable at
// batch sizes above 1.
//
// On disk, the WAL is a sequence of length+CRC32-framed batch records
// (see wal.go for the exact layout). Recovery scans frames from the
// front and truncates the log at the first bad frame: a torn final
// frame is an append cut short by a crash, and because each batch is
// one frame, the committed prefix is always whole batches.
//
// Snapshots supersede the log. A checkpoint carries an opaque metadata
// blob plus the page images modified since the previous checkpoint
// (the backend keeps the cumulative set), and commits atomically:
// write to a temp file, fsync, rename into place, fsync the directory,
// then truncate the WAL. A crash between the rename and the truncate
// is benign — replaying the full WAL over the new snapshot is
// idempotent, since records are whole-value puts and deletes.
//
// Store is the pluggable backend interface; FileStore is the file
// implementation. Callers speak records and snapshots, never files, so
// a SQL-style backend can slot in behind the same interface.
package persist
