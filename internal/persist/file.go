package persist

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// File layout of the file backend. The WAL is a flat frame sequence;
// the snapshot is a single frame, replaced atomically by
// write-tmp/fsync/rename, so at every instant exactly one committed
// snapshot exists on disk (or none).
const (
	walName      = "wal.log"
	snapshotName = "snapshot.dat"
	snapshotTmp  = "snapshot.tmp"
)

// FileConfig configures a FileStore.
type FileConfig struct {
	// Fsync syncs the WAL file on every Append (the durable-by-ack
	// configuration). Off, appends reach the OS but a host crash can
	// lose the tail — the usual fsync-off trade.
	Fsync bool
	// Metrics receives the store's counters (optional; may be shared
	// across stores).
	Metrics *metrics.Persist
}

// RecoveryInfo describes what OpenFile found on disk.
type RecoveryInfo struct {
	// HadSnapshot reports that a committed snapshot was loaded.
	HadSnapshot bool
	// Batches is the number of committed WAL batches found.
	Batches int
	// TornBytes is the byte count truncated off the WAL tail (0 when
	// the log ended on a frame boundary).
	TornBytes int64
}

// FileStore is the file-backed Store: one WAL file plus one snapshot
// file per store directory. Safe for concurrent use (the recovery
// hammer kills stores from outside the owning shard's goroutine).
type FileStore struct {
	mu     sync.Mutex
	dir    string
	cfg    FileConfig
	wal    *os.File
	walLen int64
	dead   bool
	// killFrac, when >= 0, arms the crash hook: the next Append writes
	// only that fraction of its frame and dies — the seeded mid-commit
	// kill the campaign's recovery scenarios use.
	killFrac float64

	// pages is the cumulative snapshot page set; Snapshot merges deltas
	// into it so each checkpoint file is self-contained.
	pages map[uint64][]byte
	meta  []byte

	recovered *Snapshot
	records   [][]byte
	info      RecoveryInfo
}

// OpenFile opens (creating as needed) the store rooted at dir and
// performs recovery: it loads the latest committed snapshot, truncates
// any torn WAL tail at the first bad frame, and decodes the committed
// record suffix for Recover to return.
func OpenFile(dir string, cfg FileConfig) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	s := &FileStore{dir: dir, cfg: cfg, killFrac: -1, pages: make(map[uint64][]byte)}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	if s.cfg.Metrics != nil && (s.info.HadSnapshot || s.info.Batches > 0 || s.info.TornBytes > 0) {
		s.cfg.Metrics.ObserveRecovery(s.info.Batches, s.info.TornBytes)
	}
	return s, nil
}

// loadSnapshot reads and validates snapshot.dat, if present. A missing
// file means no checkpoint; an unreadable one is an error — the
// snapshot is committed atomically, so a bad frame is real corruption,
// not a torn write, and silently discarding it would lose data.
func (s *FileStore) loadSnapshot() error {
	raw, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	payload, rest, err := DecodeFrame(raw)
	if err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("persist: snapshot: %w: %d trailing bytes", ErrBadBatch, len(rest))
	}
	meta, pages, err := decodeSnapshotPayload(payload)
	if err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	// Deep-copy out of the read buffer. decodeSnapshotPayload aliases
	// raw, and the store must never hand out (or keep) bytes backed by
	// it: a later Snapshot rebuilds s.meta while s.recovered is still
	// live, and sharing the file buffer would let one overwrite the
	// other's pages.
	meta = append([]byte(nil), meta...)
	for i := range pages {
		pages[i].Data = append([]byte(nil), pages[i].Data...)
	}
	s.meta = meta
	for _, p := range pages {
		s.pages[p.PN] = p.Data
	}
	s.recovered = &Snapshot{Meta: meta, Pages: pages}
	s.info.HadSnapshot = true
	return nil
}

// openWAL opens the log, truncates a torn tail at the first bad frame,
// and decodes the committed batches into the record suffix.
func (s *FileStore) openWAL() error {
	f, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("persist: wal: %w", err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		cerr := f.Close()
		return fmt.Errorf("persist: wal read: %w", firstErr(err, cerr))
	}
	payloads, valid, scanErr := ScanFrames(raw)
	if scanErr != nil {
		// Torn tail: everything from the first bad frame on is an
		// uncommitted append cut short by a crash. Truncate, so the next
		// append starts on a frame boundary.
		s.info.TornBytes = int64(len(raw) - valid)
		if err := f.Truncate(int64(valid)); err != nil {
			cerr := f.Close()
			return fmt.Errorf("persist: wal truncate: %w", firstErr(err, cerr))
		}
		if err := f.Sync(); err != nil {
			cerr := f.Close()
			return fmt.Errorf("persist: wal sync: %w", firstErr(err, cerr))
		}
	}
	for _, payload := range payloads {
		records, err := DecodeBatch(payload)
		if err != nil {
			cerr := f.Close()
			return fmt.Errorf("persist: wal batch %d: %w", s.info.Batches, firstErr(err, cerr))
		}
		s.records = append(s.records, records...)
		s.info.Batches++
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		cerr := f.Close()
		return fmt.Errorf("persist: wal seek: %w", firstErr(err, cerr))
	}
	s.wal = f
	s.walLen = int64(valid)
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Recover implements Store, returning what OpenFile found.
func (s *FileStore) Recover() (*Snapshot, [][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil, nil, ErrClosed
	}
	return s.recovered, s.records, nil
}

// Info returns what OpenFile found on disk.
func (s *FileStore) Info() RecoveryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.info
}

// KillNextAppend arms the crash hook: the next Append writes only frac
// of its frame bytes (clamped to leave the frame incomplete), makes
// the partial write durable, and returns ErrKilled with the store dead
// — simulating a process crash in the middle of a group commit. The
// torn tail is what recovery must then truncate.
func (s *FileStore) KillNextAppend(frac float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	s.killFrac = frac
}

// Append implements Store: one framed write and at most one fsync for
// the whole batch. An oversized batch is rejected before any byte
// reaches the file (the store stays usable); a failed write or sync
// kills the store — the commit offset may now hold a torn partial
// frame, and committing anything after it would let recovery's
// first-bad-frame rule truncate those later, acknowledged batches.
func (s *FileStore) Append(records [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrClosed
	}
	payload := EncodeBatch(records)
	if len(payload) > MaxFrameSize {
		// Enforced at append time, not just decode time: a frame the
		// decoder would refuse must never be written, or recovery would
		// discard it — and everything after it — as a torn tail.
		return fmt.Errorf("persist: append: %w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	frame := AppendFrame(nil, payload)
	if s.killFrac >= 0 {
		n := int(s.killFrac * float64(len(frame)))
		if n >= len(frame) {
			n = len(frame) - 1 // the kill must tear the frame
		}
		if _, werr := s.wal.Write(frame[:n]); werr != nil {
			s.dead = true
			return fmt.Errorf("persist: killed append write: %w", werr)
		}
		// The partial write is made durable: the crash scenario where
		// the torn bytes DID reach disk is the one torn-tail truncation
		// exists for.
		if serr := s.wal.Sync(); serr != nil {
			s.dead = true
			return fmt.Errorf("persist: killed append sync: %w", serr)
		}
		s.dead = true
		return ErrKilled
	}
	if _, err := s.wal.Write(frame); err != nil {
		s.dead = true
		return fmt.Errorf("persist: append: %w", err)
	}
	if s.cfg.Fsync {
		if err := s.wal.Sync(); err != nil {
			s.dead = true
			return fmt.Errorf("persist: append sync: %w", err)
		}
	}
	s.walLen += int64(len(frame))
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.ObserveAppend(len(frame), s.cfg.Fsync)
	}
	return nil
}

// Snapshot implements Store: merge the delta into the cumulative page
// set, commit the checkpoint atomically (write-tmp, fsync, rename,
// fsync dir), then truncate the WAL it supersedes. A crash between the
// rename and the truncate is safe: replaying the full WAL over the new
// snapshot is idempotent (records are whole-value puts and deletes).
// The merge happens before any file I/O, so a failed commit retains
// the delta in the cumulative set — the store stays usable in
// log-only mode and the next Snapshot call re-commits everything.
func (s *FileStore) Snapshot(meta []byte, delta []SnapshotPage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrClosed
	}
	// Fresh allocation, never append-in-place: after recovery s.meta
	// shares its backing array with s.recovered.Meta, and a longer meta
	// written in place would trample it.
	s.meta = append([]byte(nil), meta...)
	for _, p := range delta {
		s.pages[p.PN] = append([]byte(nil), p.Data...)
	}
	payload := encodeSnapshotPayload(s.meta, s.pages)
	tmp := filepath.Join(s.dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: snapshot tmp: %w", err)
	}
	if _, werr := f.Write(AppendFrame(nil, payload)); werr != nil {
		cerr := f.Close()
		return fmt.Errorf("persist: snapshot write: %w", firstErr(werr, cerr))
	}
	if serr := f.Sync(); serr != nil {
		cerr := f.Close()
		return fmt.Errorf("persist: snapshot sync: %w", firstErr(serr, cerr))
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("persist: snapshot rename: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("persist: snapshot dir sync: %w", err)
	}
	// The snapshot now covers every committed WAL record: truncate.
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("persist: wal truncate: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("persist: wal seek: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("persist: wal sync: %w", err)
	}
	s.walLen = 0
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.ObserveSnapshot(len(delta))
	}
	return nil
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	return firstErr(serr, cerr)
}

// WALBytes returns the current committed WAL length, for tests and
// cadence diagnostics.
func (s *FileStore) WALBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walLen
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	s.dead = true
	if err != nil {
		return fmt.Errorf("persist: close: %w", err)
	}
	return nil
}

// Snapshot payload format:
//
//	[metaLen u32][meta][count u32] then count pages,
//	each [pn u64][len u32][data]
//
// pages in ascending page-number order (deterministic bytes).
func encodeSnapshotPayload(meta []byte, pages map[uint64][]byte) []byte {
	pns := make([]uint64, 0, len(pages))
	//lint:detorder keys are sorted immediately below for deterministic output
	for pn := range pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	size := 8 + len(meta)
	for _, pn := range pns {
		size += 12 + len(pages[pn])
	}
	out := make([]byte, 0, size)
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(meta)))
	out = append(out, b8[:4]...)
	out = append(out, meta...)
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(pns)))
	out = append(out, b8[:4]...)
	for _, pn := range pns {
		binary.LittleEndian.PutUint64(b8[:], pn)
		out = append(out, b8[:]...)
		binary.LittleEndian.PutUint32(b8[:4], uint32(len(pages[pn])))
		out = append(out, b8[:4]...)
		out = append(out, pages[pn]...)
	}
	return out
}

func decodeSnapshotPayload(payload []byte) (meta []byte, pages []SnapshotPage, err error) {
	if len(payload) < 4 {
		return nil, nil, fmt.Errorf("%w: %d bytes", ErrBadBatch, len(payload))
	}
	n := binary.LittleEndian.Uint32(payload)
	rest := payload[4:]
	if uint64(len(rest)) < uint64(n) {
		return nil, nil, fmt.Errorf("%w: meta %d of %d bytes", ErrBadBatch, len(rest), n)
	}
	meta = rest[:n]
	rest = rest[n:]
	if len(rest) < 4 {
		return nil, nil, fmt.Errorf("%w: page count truncated", ErrBadBatch)
	}
	count := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(count)*12 > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: page count %d exceeds payload", ErrBadBatch, count)
	}
	pages = make([]SnapshotPage, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 12 {
			return nil, nil, fmt.Errorf("%w: page %d header truncated", ErrBadBatch, i)
		}
		pn := binary.LittleEndian.Uint64(rest)
		sz := binary.LittleEndian.Uint32(rest[8:])
		rest = rest[12:]
		if uint64(len(rest)) < uint64(sz) {
			return nil, nil, fmt.Errorf("%w: page %d is %d of %d bytes", ErrBadBatch, i, len(rest), sz)
		}
		pages = append(pages, SnapshotPage{PN: pn, Data: rest[:sz]})
		rest = rest[sz:]
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadBatch, len(rest))
	}
	return meta, pages, nil
}
