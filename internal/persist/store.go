package persist

import "errors"

// SnapshotPage is one captured page image: the simulated page number
// and its full contents.
type SnapshotPage struct {
	PN   uint64
	Data []byte
}

// Snapshot is the durable checkpoint a Recover returns: an opaque
// metadata blob (the kvstore layer serializes its cache index and heap
// geometry into it) plus the merged page images of the captured heap.
// Pages are in ascending page-number order.
type Snapshot struct {
	Meta  []byte
	Pages []SnapshotPage
}

// ErrClosed is returned by operations on a closed (or killed) store.
var ErrClosed = errors.New("persist: store is closed")

// ErrKilled is returned by an append the crash hook cut short; the
// store is dead afterwards, exactly like a process that died mid-write.
var ErrKilled = errors.New("persist: store killed mid-append")

// Store is the pluggable durability backend: a write-ahead log with
// batch-granular group commit, checkpointing, and recovery. The file
// backend (FileStore) is the first implementation; the per-entity
// layering — callers speak records and snapshots, never files — leaves
// room for a SQL-style backend behind the same interface.
//
// The contract: a record handed to Append is durable iff Append
// returned nil (ack-after-commit); records of one Append call are
// atomic (all recovered or none); Snapshot supersedes the log, so
// Recover returns the latest committed snapshot plus exactly the
// records appended after it, in order.
type Store interface {
	// Append durably commits one batch of records as a unit: one framed
	// write (and at most one fsync) regardless of batch size. A batch
	// rejected before any byte was written (e.g. over the frame size
	// limit) leaves the store usable; any failure after bytes may have
	// reached the log kills the store (later calls return ErrClosed) —
	// committing past a possibly-torn frame would let recovery's
	// first-bad-frame truncation discard acknowledged batches.
	Append(records [][]byte) error
	// Snapshot atomically commits a checkpoint: the metadata blob plus
	// the page images modified since the previous snapshot (the backend
	// keeps the cumulative set). After it returns, the log records it
	// covered are no longer needed for recovery. A failed Snapshot must
	// leave the store usable for appends and retain the handed-in delta
	// for the next attempt: callers treat the failure as a degraded,
	// log-only condition, never as data loss — the WAL still holds the
	// full committed history.
	Snapshot(meta []byte, delta []SnapshotPage) error
	// Recover returns the latest committed snapshot (nil if none) and
	// the committed record suffix to replay over it.
	Recover() (*Snapshot, [][]byte, error)
	// Close flushes and releases the backend.
	Close() error
}
