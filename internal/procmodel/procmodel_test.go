package procmodel

import (
	"testing"
	"time"

	"repro/internal/vclock"
)

const tenGB = 10_000_000_000

func TestProcessRestartTenGBIsRoughlyTwoMinutes(t *testing.T) {
	// The paper: "a regular restart takes about 2 minutes" for a 10 GB
	// memcached database.
	rt := ProcessRestart{}.RecoveryTime(tenGB)
	if rt < 90*time.Second || rt > 150*time.Second {
		t.Errorf("restart(10GB) = %v, want ≈2min", rt)
	}
}

func TestSDRaDRewindIsMicroseconds(t *testing.T) {
	// The paper: "in-process rewinding takes only 3.5µs".
	rt := SDRaDRewind{ZeroOnDiscard: true}.RecoveryTime(tenGB)
	if rt < time.Microsecond || rt > 100*time.Microsecond {
		t.Errorf("rewind = %v, want µs-scale", rt)
	}
	// And it is independent of state size.
	if (SDRaDRewind{ZeroOnDiscard: true}).RecoveryTime(0) != rt {
		t.Error("rewind time depends on state size")
	}
}

func TestRewindVsRestartRatio(t *testing.T) {
	// Paper shape: restart/rewind ≈ 2min/3.5µs ≈ 3.4·10⁷. Require the
	// reproduction to land within two orders of magnitude of that ratio.
	restart := ProcessRestart{}.RecoveryTime(tenGB)
	rewind := SDRaDRewind{ZeroOnDiscard: true}.RecoveryTime(tenGB)
	ratio := float64(restart) / float64(rewind)
	if ratio < 1e6 || ratio > 1e9 {
		t.Errorf("restart/rewind ratio = %.3g, want within [1e6, 1e9]", ratio)
	}
}

func TestContainerSlowerThanProcess(t *testing.T) {
	p := ProcessRestart{}.RecoveryTime(tenGB)
	c := ContainerRestart{}.RecoveryTime(tenGB)
	if c <= p {
		t.Errorf("container (%v) should be slower than process (%v)", c, p)
	}
}

func TestRestartScalesWithState(t *testing.T) {
	small := ProcessRestart{}.RecoveryTime(100_000_000)
	large := ProcessRestart{}.RecoveryTime(tenGB)
	if large <= small {
		t.Error("restart time should grow with state size")
	}
	// Roughly linear: 100x the state ≈ 100x the warm-up.
	ratio := float64(large) / float64(small)
	if ratio < 50 || ratio > 150 {
		t.Errorf("scaling ratio = %.1f, want ≈100", ratio)
	}
}

func TestZeroStateRestartStillCostsExec(t *testing.T) {
	if rt := (ProcessRestart{}).RecoveryTime(0); rt <= 0 {
		t.Errorf("zero-state restart = %v, want > 0", rt)
	}
}

func TestFailoverStrategies(t *testing.T) {
	ap := ActivePassive{}
	if ap.RecoveryTime(tenGB) != 5*time.Second {
		t.Errorf("default failover = %v", ap.RecoveryTime(tenGB))
	}
	if ap.Servers() != 2 {
		t.Errorf("active-passive servers = %v", ap.Servers())
	}
	custom := ActivePassive{FailoverTime: time.Second}
	if custom.RecoveryTime(0) != time.Second {
		t.Error("custom failover time ignored")
	}
	np := NPlusOne{}
	if np.Servers() != 1.25 {
		t.Errorf("default N+1 servers = %v, want 1.25", np.Servers())
	}
	np8 := NPlusOne{N: 8}
	if np8.Servers() != 1.125 {
		t.Errorf("8+1 servers = %v, want 1.125", np8.Servers())
	}
}

func TestSteadyOverheads(t *testing.T) {
	// SDRaD default overhead must sit in the paper's 2–4% band.
	oh := SDRaDRewind{}.SteadyOverhead()
	if oh < 0.02 || oh > 0.04 {
		t.Errorf("SDRaD overhead = %v, want within [0.02, 0.04]", oh)
	}
	if (ProcessRestart{}).SteadyOverhead() != 0 {
		t.Error("restart should have zero steady overhead")
	}
	if (SDRaDRewind{Overhead: 0.025}).SteadyOverhead() != 0.025 {
		t.Error("custom overhead ignored")
	}
}

func TestDefaultStrategiesComplete(t *testing.T) {
	sts := DefaultStrategies()
	if len(sts) != 6 {
		t.Fatalf("strategies = %d, want 6", len(sts))
	}
	seen := map[string]bool{}
	for _, s := range sts {
		if s.Name() == "" {
			t.Error("unnamed strategy")
		}
		if seen[s.Name()] {
			t.Errorf("duplicate strategy %q", s.Name())
		}
		seen[s.Name()] = true
		if s.Servers() < 1 {
			t.Errorf("%s: servers = %v < 1", s.Name(), s.Servers())
		}
		if s.RecoveryTime(tenGB) <= 0 {
			t.Errorf("%s: non-positive recovery time", s.Name())
		}
	}
}

func TestIsolationMechanismOrdering(t *testing.T) {
	// §IV's claim: MPK domain switching is far cheaper than process
	// context switching (and than syscalls).
	ms := IsolationMechanisms(vclock.DefaultCostModel())
	byName := map[string]IsolationMechanism{}
	for _, m := range ms {
		byName[m.Name] = m
		if m.SwitchTime <= 0 || m.RoundTrip < m.SwitchTime {
			t.Errorf("%s: implausible costs %v/%v", m.Name, m.SwitchTime, m.RoundTrip)
		}
	}
	mpk := byName["mpk-domain"]
	sys := byName["syscall"]
	proc := byName["process-sandbox"]
	if mpk.RoundTrip*10 > sys.RoundTrip {
		t.Errorf("mpk (%v) should be >10x cheaper than syscall (%v)", mpk.RoundTrip, sys.RoundTrip)
	}
	if sys.RoundTrip >= proc.RoundTrip {
		t.Errorf("syscall (%v) should be cheaper than process sandbox (%v)", sys.RoundTrip, proc.RoundTrip)
	}
}

func TestIsolationMechanismsZeroCostModelDefaults(t *testing.T) {
	ms := IsolationMechanisms(vclock.CostModel{})
	if len(ms) != 5 {
		t.Fatalf("mechanisms = %d, want 5", len(ms))
	}
	for _, m := range ms {
		if m.SwitchTime <= 0 {
			t.Errorf("%s: zero switch time with defaulted model", m.Name)
		}
	}
}

func TestCheckpointRestoreFasterThanColdRestart(t *testing.T) {
	cr := CheckpointRestore{}
	pr := ProcessRestart{}
	// At 10 GB, restoring a local image (~1 GB/s) beats repopulating from
	// the backing store (~85 MB/s), but both are far above rewind.
	crTime, prTime := cr.RecoveryTime(tenGB), pr.RecoveryTime(tenGB)
	if crTime >= prTime {
		t.Errorf("checkpoint restore (%v) should beat cold restart (%v)", crTime, prTime)
	}
	rw := SDRaDRewind{ZeroOnDiscard: true}.RecoveryTime(tenGB)
	if crTime < 1000*rw {
		t.Errorf("checkpoint restore (%v) should still be >>1000x rewind (%v)", crTime, rw)
	}
	if cr.Servers() != 1 {
		t.Errorf("servers = %v", cr.Servers())
	}
	oh := cr.SteadyOverhead()
	if oh <= 0 || oh > 0.1 {
		t.Errorf("overhead = %v", oh)
	}
	if (CheckpointRestore{CheckpointOverhead: 0.05}).SteadyOverhead() != 0.05 {
		t.Error("custom overhead ignored")
	}
	if (CheckpointRestore{}).RecoveryTime(0) <= 0 {
		t.Error("zero-state restore should still cost exec")
	}
}
