// Package procmodel models the recovery baselines the paper compares
// SDRaD against: whole-process restart, container restart, and
// redundancy-based failover (active-passive and 2N replication), plus the
// conventional process-isolation sandbox whose context-switch cost §IV
// contrasts with MPK domain switching.
//
// The real systems (systemd restarting memcached, a container runtime,
// a standby replica) are environment-gated; what the paper's claims use
// is their *recovery latency* as a function of application state size and
// their *hardware footprint*. Both are captured here as explicit cost
// models over the shared vclock.CostModel constants, so the experiment
// harness can sweep them deterministically.
package procmodel

import (
	"time"

	"repro/internal/vclock"
)

// Strategy is a resilience strategy: how a service recovers from a
// memory-corruption fault, and what it costs when nothing is failing.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// RecoveryTime returns the service-visible recovery latency after a
	// fault, given the application state (e.g. cache contents) that must
	// be live again before the service is considered recovered.
	RecoveryTime(stateBytes uint64) time.Duration
	// Servers returns the hardware replication factor: how many server
	// instances must be provisioned to run one logical service.
	Servers() float64
	// SteadyOverhead returns the fractional runtime overhead the strategy
	// imposes during normal (fault-free) operation, e.g. 0.03 for 3%.
	SteadyOverhead() float64
}

// ProcessRestart models systemd-style restart of the whole process: the
// process is re-exec'd and must repopulate its in-memory state from disk
// or peers before serving again. With the default cost model, 10 GB of
// state takes ≈2 minutes — the paper's Memcached number.
type ProcessRestart struct {
	Cost vclock.CostModel
}

// Name implements Strategy.
func (ProcessRestart) Name() string { return "process-restart" }

// RecoveryTime implements Strategy.
func (p ProcessRestart) RecoveryTime(stateBytes uint64) time.Duration {
	c := p.cost()
	exec := vclock.CyclesToDuration(c.ForkExec, c.CPUHz)
	return exec + warmup(stateBytes, c)
}

// Servers implements Strategy.
func (ProcessRestart) Servers() float64 { return 1 }

// SteadyOverhead implements Strategy. A plain restart policy adds no
// steady-state overhead.
func (ProcessRestart) SteadyOverhead() float64 { return 0 }

func (p ProcessRestart) cost() vclock.CostModel {
	if p.Cost.CPUHz == 0 {
		return vclock.DefaultCostModel()
	}
	return p.Cost
}

// ContainerRestart models restarting the service container: runtime and
// namespace setup on top of process start, then the same state warm-up.
type ContainerRestart struct {
	Cost vclock.CostModel
}

// Name implements Strategy.
func (ContainerRestart) Name() string { return "container-restart" }

// RecoveryTime implements Strategy.
func (c ContainerRestart) RecoveryTime(stateBytes uint64) time.Duration {
	m := c.cost()
	setup := vclock.CyclesToDuration(m.ContainerStart+m.ForkExec, m.CPUHz)
	return setup + warmup(stateBytes, m)
}

// Servers implements Strategy.
func (ContainerRestart) Servers() float64 { return 1 }

// SteadyOverhead implements Strategy.
func (ContainerRestart) SteadyOverhead() float64 { return 0 }

func (c ContainerRestart) cost() vclock.CostModel {
	if c.Cost.CPUHz == 0 {
		return vclock.DefaultCostModel()
	}
	return c.Cost
}

// SDRaDRewind models in-process secure rewind and discard. Recovery is
// independent of application state size: the long-lived state lives in
// the root domain and survives; only the faulting domain's heap (a
// per-request/per-connection working set of HeapPages pages) is
// discarded.
type SDRaDRewind struct {
	Cost vclock.CostModel
	// HeapPages is the discarded domain's heap size in pages (default 16).
	HeapPages int
	// ZeroOnDiscard scrubs pages during discard (default true when
	// constructed by DefaultStrategies).
	ZeroOnDiscard bool
	// Overhead is the steady-state compartmentalization overhead fraction
	// (the paper's 2–4%; default 0.03).
	Overhead float64
}

// Name implements Strategy.
func (SDRaDRewind) Name() string { return "sdrad-rewind" }

// RecoveryTime implements Strategy.
func (s SDRaDRewind) RecoveryTime(uint64) time.Duration {
	c := s.cost()
	pages := s.HeapPages
	if pages <= 0 {
		pages = 16
	}
	cycles := c.SignalDeliver + c.RestoreCtx + c.WRPKRU
	if s.ZeroOnDiscard {
		cycles += c.PageZero * uint64(pages)
	}
	return vclock.CyclesToDuration(cycles, c.CPUHz)
}

// Servers implements Strategy.
func (SDRaDRewind) Servers() float64 { return 1 }

// SteadyOverhead implements Strategy.
func (s SDRaDRewind) SteadyOverhead() float64 {
	if s.Overhead == 0 {
		return 0.03
	}
	return s.Overhead
}

func (s SDRaDRewind) cost() vclock.CostModel {
	if s.Cost.CPUHz == 0 {
		return vclock.DefaultCostModel()
	}
	return s.Cost
}

// CheckpointRestore models CRIU-style periodic checkpointing: recovery
// restores the last memory image from local storage instead of
// repopulating state from scratch, so it is storage-bandwidth-bound and
// loses the work since the last checkpoint. Steady-state overhead comes
// from taking the periodic snapshots.
type CheckpointRestore struct {
	Cost vclock.CostModel
	// RestoreBytesPerSec is the image-restore bandwidth (default
	// 1 GB/s: local NVMe sequential read + page re-population).
	RestoreBytesPerSec uint64
	// CheckpointOverhead is the steady-state cost of periodic snapshots
	// (default 2%).
	CheckpointOverhead float64
}

// Name implements Strategy.
func (CheckpointRestore) Name() string { return "checkpoint-restore" }

// RecoveryTime implements Strategy.
func (c CheckpointRestore) RecoveryTime(stateBytes uint64) time.Duration {
	m := c.cost()
	bw := c.RestoreBytesPerSec
	if bw == 0 {
		bw = 1_000_000_000
	}
	exec := vclock.CyclesToDuration(m.ForkExec, m.CPUHz)
	if stateBytes == 0 {
		return exec
	}
	return exec + time.Duration(float64(stateBytes)/float64(bw)*float64(time.Second))
}

// Servers implements Strategy.
func (CheckpointRestore) Servers() float64 { return 1 }

// SteadyOverhead implements Strategy.
func (c CheckpointRestore) SteadyOverhead() float64 {
	if c.CheckpointOverhead == 0 {
		return 0.02
	}
	return c.CheckpointOverhead
}

func (c CheckpointRestore) cost() vclock.CostModel {
	if c.Cost.CPUHz == 0 {
		return vclock.DefaultCostModel()
	}
	return c.Cost
}

// ActivePassive models a hot-standby pair: a failure is masked by
// failing over to the standby (detection + VIP switch), while the failed
// instance restarts in the background. Hardware footprint is 2x.
type ActivePassive struct {
	// FailoverTime is the client-visible blip (default 5 s: health-check
	// detection plus traffic switch).
	FailoverTime time.Duration
}

// Name implements Strategy.
func (ActivePassive) Name() string { return "active-passive" }

// RecoveryTime implements Strategy.
func (a ActivePassive) RecoveryTime(uint64) time.Duration {
	if a.FailoverTime <= 0 {
		return 5 * time.Second
	}
	return a.FailoverTime
}

// Servers implements Strategy.
func (ActivePassive) Servers() float64 { return 2 }

// SteadyOverhead implements Strategy (keeping the standby warm costs
// replication traffic; modeled at 1%).
func (ActivePassive) SteadyOverhead() float64 { return 0.01 }

// NPlusOne models an N+1 cluster: N active shards plus one spare; a
// failure is masked by the spare taking over the failed shard.
type NPlusOne struct {
	// N is the number of active instances (default 4).
	N int
	// FailoverTime is the per-fault blip (default 5 s).
	FailoverTime time.Duration
}

// Name implements Strategy.
func (NPlusOne) Name() string { return "n-plus-1" }

// RecoveryTime implements Strategy.
func (n NPlusOne) RecoveryTime(uint64) time.Duration {
	if n.FailoverTime <= 0 {
		return 5 * time.Second
	}
	return n.FailoverTime
}

// Servers implements Strategy.
func (n NPlusOne) Servers() float64 {
	if n.N <= 0 {
		return float64(5) / 4
	}
	return float64(n.N+1) / float64(n.N)
}

// SteadyOverhead implements Strategy.
func (NPlusOne) SteadyOverhead() float64 { return 0.01 }

// warmup returns the time to repopulate stateBytes of application state.
func warmup(stateBytes uint64, c vclock.CostModel) time.Duration {
	if c.WarmupBytesPerSec == 0 || stateBytes == 0 {
		return 0
	}
	secs := float64(stateBytes) / float64(c.WarmupBytesPerSec)
	return time.Duration(secs * float64(time.Second))
}

// DefaultStrategies returns the strategy set compared throughout the
// evaluation, in presentation order.
func DefaultStrategies() []Strategy {
	return []Strategy{
		ProcessRestart{},
		ContainerRestart{},
		CheckpointRestore{},
		ActivePassive{},
		NPlusOne{},
		SDRaDRewind{ZeroOnDiscard: true},
	}
}

// Interface compliance checks.
var (
	_ Strategy = ProcessRestart{}
	_ Strategy = ContainerRestart{}
	_ Strategy = CheckpointRestore{}
	_ Strategy = SDRaDRewind{}
	_ Strategy = ActivePassive{}
	_ Strategy = NPlusOne{}
)

// IsolationMechanism describes a compartmentalization primitive for the
// E6 micro-cost comparison (§IV: process isolation's context-switch cost
// vs lightweight MPK domain switching).
type IsolationMechanism struct {
	// Name identifies the mechanism.
	Name string
	// SwitchTime is the one-way cost of transferring control into the
	// isolated compartment.
	SwitchTime time.Duration
	// RoundTrip is the cost of a call-and-return across the boundary.
	RoundTrip time.Duration
}

// IsolationMechanisms returns the E6 comparison set derived from the cost
// model: MPK domain switch, same-process function call (no isolation),
// syscall-based kernel crossing, process-based sandbox (two context
// switches per call), and a container-boundary RPC.
func IsolationMechanisms(c vclock.CostModel) []IsolationMechanism {
	if c.CPUHz == 0 {
		c = vclock.DefaultCostModel()
	}
	d := func(cycles uint64) time.Duration { return vclock.CyclesToDuration(cycles, c.CPUHz) }
	return []IsolationMechanism{
		{
			Name:       "function-call",
			SwitchTime: d(5),
			RoundTrip:  d(10),
		},
		{
			Name:       "mpk-domain",
			SwitchTime: d(c.SnapshotCtx + c.WRPKRU),
			RoundTrip:  d(c.SnapshotCtx + 2*c.WRPKRU),
		},
		{
			Name:       "syscall",
			SwitchTime: d(c.Syscall),
			RoundTrip:  d(2 * c.Syscall),
		},
		{
			Name:       "process-sandbox",
			SwitchTime: d(c.ContextSwitch + c.Syscall),
			RoundTrip:  d(2 * (c.ContextSwitch + c.Syscall)),
		},
		{
			Name:       "container-rpc",
			SwitchTime: d(2*c.ContextSwitch + 2*c.Syscall),
			RoundTrip:  d(4*c.ContextSwitch + 4*c.Syscall),
		},
	}
}
