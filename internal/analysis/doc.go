// Package analysis is sdradlint: a suite of type-checked static
// analyzers that enforce, at lint time, the soundness invariants the
// rest of this repository only asserts at run time.
//
// The reproduction's guarantees — deterministic virtual time, exact
// cycle accounting, byte-identical campaign traces, typed
// rewind/budget/overload errors — are invariants the Go compiler cannot
// see. Each analyzer turns one of them into a compile-time gate:
//
//   - wallclock: library code must never read the wall clock
//     (time.Now/Since/Until); virtual time is the only clock. Type-aware,
//     so import aliases, dot-imports, and function-value indirection
//     cannot dodge it.
//   - unchargedmem: functions marked "//lint:uncharged" (the kernel-side
//     Peek64/Poke64 accessors) are callable only from their defining
//     package and packages sanctioned with //lint:allow unchargedmem.
//   - detorder: no raw map iteration — traces, digests, and aggregated
//     stats must be iteration-order deterministic. The key-collect-then-
//     sort idiom is recognized; everything else needs a justification.
//   - errclass: typed errors are classified (errors.Is/IsBudget/
//     IsOverload), never compared with == or silently dropped.
//   - docexport: exported declarations of public packages carry doc
//     comments.
//
// Exemptions are declared in the exempted code itself as directives and
// carried as analyzer facts, never as path lists in a driver:
//
//	//lint:allow <analyzer> <reason>    package-wide, on the package clause
//	//lint:<analyzer> <justification>   one site, on or above the line
//	//lint:uncharged                    marks a sanctioned accessor decl
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// package/object facts, an analysistest-style fixture runner in the
// analysistest subpackage) but is self-contained: packages are loaded
// via `go list -deps -export` and type-checked from source in one
// shared object universe, with standard-library imports resolved from
// the build cache's export data. cmd/sdradlint is the multichecker;
// `make lint` runs it over ./... and CI gates on it. DESIGN.md §10 maps
// each analyzer to the soundness argument it protects.
package analysis
