package analysis

// All returns the full sdradlint suite in a fixed order. Each analyzer
// guards one of the soundness invariants DESIGN.md §10 maps to the
// paper's claims; new analyzers register here so cmd/sdradlint and the
// guardrail tests pick them up together.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, UnchargedMem, DetOrder, ErrClass, DocExport}
}

// ByName returns the named analyzer from All, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
