// Package errs supplies typed errors and classifiers for the errclass
// fixtures, mirroring the repo's BudgetError/IsBudget shape.
package errs

import "errors"

// ErrClosed is a sentinel used by the comparison fixtures.
var ErrClosed = errors.New("errs: closed")

// BudgetError mirrors the repo's typed budget error.
type BudgetError struct{ Cycles uint64 }

// Error implements error.
func (e *BudgetError) Error() string { return "errs: budget exhausted" }

// Op returns a typed error.
func Op() error { return &BudgetError{} }

// Val returns a value and an error.
func Val() (int, error) { return 0, nil }

// IsBudget classifies err, comma-ok style.
func IsBudget(err error) (*BudgetError, bool) {
	var be *BudgetError
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}
