// Package gw exercises the errclass analyzer against gateway-tier
// error shapes: typed admission rejections (QuarantinedError) and
// overload errors (OverloadError) whose classification must not be
// silently dropped by servers translating them onto the wire.
package gw

import "errors"

// QuarantinedError mirrors the gateway's circuit-breaker rejection.
type QuarantinedError struct{ Tenant string }

// Error implements error.
func (e *QuarantinedError) Error() string { return "gw: tenant quarantined" }

// OverloadError mirrors the submission tier's queue-full rejection.
type OverloadError struct{ Depth int }

// Error implements error.
func (e *OverloadError) Error() string { return "gw: overloaded" }

// Admit returns a typed admission rejection.
func Admit(tenant string) error { return &QuarantinedError{Tenant: tenant} }

// Submit returns a value plus a typed overload error.
func Submit() (int, error) { return 0, &OverloadError{Depth: 1} }

// IsQuarantined classifies err, comma-ok style.
func IsQuarantined(err error) (*QuarantinedError, bool) {
	var qe *QuarantinedError
	if errors.As(err, &qe) {
		return qe, true
	}
	return nil, false
}

// IsOverload classifies err, comma-ok style.
func IsOverload(err error) (*OverloadError, bool) {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe, true
	}
	return nil, false
}

// DroppedAdmit discards the quarantine rejection in statement position:
// the caller never learns the tenant was refused. Flagged.
func DroppedAdmit() {
	Admit("mal") // want `result of gw\.Admit includes a typed error that is silently discarded`
}

// DeferredAdmit discards in defer position: flagged.
func DeferredAdmit() {
	defer Admit("mal") // want `result of gw\.Admit includes a typed error`
}

// BlankedAdmit discards via the blank identifier: flagged.
func BlankedAdmit() {
	_ = Admit("mal") // want `error result of gw\.Admit assigned to _`
}

// BlankedSubmit drops the overload half of the tuple — the retry hint
// is lost and the request silently vanishes. Flagged.
func BlankedSubmit() int {
	v, _ := Submit() // want `error result of gw\.Submit assigned to _`
	return v
}

// HandledAdmit routes the rejection through a classifier: the sanctioned
// pattern, not flagged.
func HandledAdmit() bool {
	err := Admit("mal")
	if _, ok := IsQuarantined(err); ok {
		return true
	}
	_, over := IsOverload(err)
	return over
}

// CommaOKProbe consumes only the classifier bool: blanking the typed
// half loses nothing, not flagged.
func CommaOKProbe(err error) bool {
	_, ok := IsOverload(err)
	return ok
}

// JustifiedDrop carries a reviewable justification: not flagged.
func JustifiedDrop() {
	_ = Admit("mal") //lint:errclass fixture: shed on shutdown, rejection intentional
}
