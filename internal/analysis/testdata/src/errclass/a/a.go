// Package a exercises the errclass analyzer.
package a

import (
	"errors"
	"fmt"

	"errclass/errs"
)

// Compare flags direct error equality: it breaks under wrapping.
func Compare(err error) bool {
	return err == errs.ErrClosed // want `errors compared with == break under wrapping`
}

// CompareNeq flags inequality too.
func CompareNeq(err error) bool {
	return err != errs.ErrClosed // want `errors compared with != break under wrapping`
}

// NilCheck is fine: comparison against nil is not classification.
func NilCheck(err error) bool { return err == nil }

// Classified is the sanctioned pattern.
func Classified(err error) bool { return errors.Is(err, errs.ErrClosed) }

// Dropped discards a typed error in statement position: flagged.
func Dropped() {
	errs.Op() // want `result of errs\.Op includes a typed error that is silently discarded`
}

// DeferredDrop discards in defer position: flagged.
func DeferredDrop() {
	defer errs.Op() // want `result of errs\.Op includes a typed error`
}

// Blanked discards via the blank identifier: flagged.
func Blanked() {
	_ = errs.Op() // want `error result of errs\.Op assigned to _`
}

// BlankedTuple drops the error half of a tuple: flagged.
func BlankedTuple() int {
	v, _ := errs.Val() // want `error result of errs\.Val assigned to _`
	return v
}

// CommaOK consumes the classifier bool, so blanking the typed error
// loses nothing: not flagged.
func CommaOK(err error) bool {
	_, ok := errs.IsBudget(err)
	return ok
}

// Justified drops with a reviewable reason on the same line.
func Justified() {
	_ = errs.Op() //lint:errclass fixture: best-effort teardown
}

// StdlibDrop is out of scope: only module functions are charged here
// (dropped stdlib errors are errcheck's battle).
func StdlibDrop() {
	fmt.Println("stdlib errors are out of scope")
}
