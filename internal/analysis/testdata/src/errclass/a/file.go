package a

import (
	"io"
	"os"
)

// SyncDropped drops a WAL-boundary sync in statement position: flagged
// even though os is stdlib (the durability carve-out).
func SyncDropped(f *os.File) {
	f.Sync() // want `\(\*os\.File\)\.Sync error silently discarded`
}

// CloseDeferredDrop drops the last chance to see a write-back failure.
func CloseDeferredDrop(f *os.File) {
	defer f.Close() // want `\(\*os\.File\)\.Close error silently discarded`
}

// SyncBlanked drops via the blank identifier: flagged.
func SyncBlanked(f *os.File) {
	_ = f.Sync() // want `\(\*os\.File\)\.Sync error assigned to _`
}

// CloseHandled is the sanctioned pattern: the error reaches a caller.
func CloseHandled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// CloseJustified drops with a reviewable reason on the same line.
func CloseJustified(f *os.File) {
	_ = f.Close() //lint:errclass fixture: read-only handle, nothing buffered
}

// CloserDropped is out of scope: an interface Close resolves to
// io.Closer, not *os.File, and generic stdlib errors stay errcheck's
// battle.
func CloserDropped(c io.Closer) {
	c.Close()
}
