package a

import tm "time"

// Aliased shows that renaming the import does not dodge the ban: the
// check keys on the resolved function, not the selector text.
func Aliased() tm.Time {
	return tm.Now() // want `reference to time\.Now`
}
