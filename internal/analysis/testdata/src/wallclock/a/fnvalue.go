package a

import "time"

// Indirect shows that taking the function value is still a reference.
func Indirect() time.Time {
	f := time.Now // want `reference to time\.Now`
	return f()
}
