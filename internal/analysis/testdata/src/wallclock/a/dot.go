package a

import . "time"

// Dotted shows that a dot-import does not dodge the ban either.
func Dotted() Time {
	return Now() // want `reference to time\.Now`
}
