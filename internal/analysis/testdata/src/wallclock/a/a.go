// Package a exercises the wallclock analyzer: direct references to the
// forbidden time-package functions.
package a

import "time"

// Direct reads of the wall clock are flagged.
func Direct() time.Time {
	return time.Now() // want `reference to time\.Now in library code`
}

// Elapsed measures against the wall clock: flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `reference to time\.Since`
}

// Remaining reads the clock through time.Until: flagged.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `reference to time\.Until`
}

// Fixed constructs a time without reading the clock: not flagged.
func Fixed() time.Time {
	return time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
}

// Suppressed carries a reviewable justification on the line above.
func Suppressed() time.Time {
	//lint:wallclock fixture: justified read for the suppression test
	return time.Now()
}
