// Package badallow buries its exemption mid-file, which is itself a
// finding and grants no exemption.
package badallow

import "time"

//lint:allow wallclock fixture: too late, must sit on the package clause // want `must be on or above the package clause`
func Buried() time.Time {
	return time.Now() // want `reference to time\.Now`
}
