// Package allowed declares itself exempt on the package clause, the
// form internal/vclock and the benchmark mains use.
//
//lint:allow wallclock fixture: this package owns a sanctioned wall-clock read
package allowed

import "time"

// Sanctioned reads are not flagged anywhere in an allowed package.
func Sanctioned() time.Time { return time.Now() }
