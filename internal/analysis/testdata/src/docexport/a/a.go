// Package a exercises the docexport analyzer.
package a

// Documented carries a doc comment: not flagged.
func Documented() {}

func Undocumented() {} // want `exported func Undocumented has no doc comment`

// T is a documented exported type.
type T struct{}

type U struct{} // want `exported type U has no doc comment`

// Method is a documented method on an exported receiver.
func (T) Method() {}

func (T) Bare() {} // want `exported func Bare has no doc comment`

// Grouped declarations inherit the group's doc comment: not flagged.
const (
	A = iota
	B
)

var V int // want `exported var/const V has no doc comment`

// hidden is unexported; its methods are API of nothing.
type hidden struct{}

// Exported methods on unexported receivers are skipped.
func (hidden) Exported() {}

func helper() {}

var _ = helper
var _ = hidden{}
