// Package x sits under an internal/ segment and is exempt from the
// public-API doc rule.
package x

func Undocumented() {}
