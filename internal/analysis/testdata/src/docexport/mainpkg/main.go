// Command mainpkg shows that main packages are exempt: a binary's
// symbols are not importable API.
package main

func Undocumented() {}

func main() { Undocumented() }
