// Package bad reaches the uncharged accessors without a sanction.
package bad

import "unchargedmem/mem"

// Read is flagged: unsanctioned cross-package uncharged access.
func Read() uint64 {
	return mem.Peek64() // want `mem\.Peek64 is an uncharged kernel-side accessor`
}

// Write is flagged too.
func Write() {
	mem.Poke64(1) // want `mem\.Poke64 is an uncharged kernel-side accessor`
}

// ChargedUse goes through the ordinary accessor: not flagged.
func ChargedUse() uint64 { return mem.Charged() }
