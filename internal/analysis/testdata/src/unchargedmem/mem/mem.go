// Package mem declares uncharged accessors, mirroring internal/mem.
package mem

// state is the simulated memory word the accessors reach.
var state uint64

// Peek64 reads simulated memory without permission checks or cycle
// charges.
//
//lint:uncharged
func Peek64() uint64 { return state }

// Poke64 writes simulated memory without permission checks or cycle
// charges.
//
//lint:uncharged
func Poke64(v uint64) { state = v }

// Charged is the ordinary accessor; using it is always fine.
func Charged() uint64 { return state }

// internalUse shows same-package references are never flagged.
func internalUse() uint64 { return Peek64() }
