// Package sweep is the sanctioned consumer, like the allocator's
// in-band header walk.
//
//lint:allow unchargedmem fixture: sanctioned sweep consumer
package sweep

import "unchargedmem/mem"

// Walk may use the uncharged accessors because the package carries the
// sanction fact.
func Walk() uint64 { return mem.Peek64() }
