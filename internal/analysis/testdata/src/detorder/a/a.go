// Package a exercises the detorder analyzer.
package a

import "sort"

// Emit walks a map straight into output order: flagged.
func Emit(m map[string]int) []string {
	var out []string
	for k, v := range m { // want `map iteration order is nondeterministic`
		if v > 0 {
			out = append(out, k)
		}
	}
	return out
}

// Sorted collects keys with the recognized idiom (not flagged), sorts
// them, and ranges the sorted slice (a slice range is never flagged).
func Sorted(m map[string]int) []int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []int
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Justified carries the reviewable escape hatch on the line above.
func Justified(m map[string]uint64) uint64 {
	var sum uint64
	//lint:detorder fixture: commutative sum, order cannot matter
	for _, v := range m {
		sum += v
	}
	return sum
}

// Collected ranges key-only but does more than collect: flagged.
func Collected(m map[string]int) int {
	n := 0
	for k := range m { // want `map iteration order is nondeterministic`
		n += len(k)
	}
	return n
}
