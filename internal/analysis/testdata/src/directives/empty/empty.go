// Package empty exercises directives with missing reasons: a bare
// allow and a bare suppression are findings, and neither takes effect.
//
//lint:allow wallclock
package empty

import "time"

// Stamp would be exempt if the allow above carried a reason; as
// written, the bare directives are findings and the read is flagged.
func Stamp() time.Time {
	//lint:wallclock
	return time.Now()
}
