package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one reported diagnostic, position rendered for output.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// Run applies each analyzer to every package of the universe in
// dependency order (so facts exported by a package are visible to its
// importers) and returns the findings for target packages, sorted by
// position. Findings are deterministic: analyzers may iterate maps
// freely because ordering is imposed here.
func Run(analyzers []*Analyzer, u *Universe) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		facts := newFactStore()
		for _, pkg := range u.Pkgs {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				InModule:  u.InModule,
				facts:     facts,
				diags:     &diags,
			}
			pass.prepareDirectives()
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
			if !pkg.Target {
				continue
			}
			for _, d := range diags {
				findings = append(findings, toFinding(a, u.Fset, d))
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// toFinding renders a diagnostic with a working-directory-relative file
// path when possible, keeping output stable across checkouts.
func toFinding(a *Analyzer, fset *token.FileSet, d Diagnostic) Finding {
	pos := fset.Position(d.Pos)
	file := pos.Filename
	if wd, err := filepath.Abs("."); err == nil {
		if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return Finding{Analyzer: a.Name, File: file, Line: pos.Line, Col: pos.Column, Message: d.Message}
}
