package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrClass enforces the typed-error discipline that the
// rewind-and-discard contract rests on. The library communicates what
// happened to a call through typed, often wrapped errors —
// *ViolationError for detections, *BudgetError for preemptions,
// *OverloadError for admission rejections — and callers must classify
// them, not pattern-match or drop them. Two checks:
//
//  1. Comparing two error values with == or != (other than against nil)
//     breaks as soon as an error is wrapped; use errors.Is / errors.As
//     or the IsBudget/IsOverload helpers.
//  2. Silently discarding an error result from a function in this
//     module (a bare call statement, or assignment to _) loses the
//     classification: a dropped *OverloadError turns backpressure into
//     lost writes. Either handle the error or justify the drop with
//     "//lint:errclass <justification>".
//  3. Silently discarding (*os.File).Sync or (*os.File).Close errors.
//     The durability engine's ack-after-commit contract is only as
//     strong as its syncs: a dropped Sync error acknowledges writes the
//     kernel may never have made durable, and Close is the last chance
//     to see a deferred write-back failure.
//
// Other discarded errors from standard-library calls remain out of
// scope — that is errcheck's battle, not a soundness invariant of this
// repo. The os.File carve-out exists because the WAL's crash-consistency
// argument (DESIGN.md §11) cites those two calls by name.
var ErrClass = &Analyzer{
	Name: "errclass",
	Doc: "require errors.Is-style classification of typed errors: no ==/!= " +
		"between errors, no discarded error results from module functions " +
		"or from (*os.File).Sync/Close (the durability boundary)",
	Run: runErrClass,
}

// isFileSyncClose reports whether fn is (*os.File).Sync or
// (*os.File).Close — the two calls the WAL's durability argument rests
// on, charged even though they live in the standard library.
func isFileSyncClose(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	if fn.Name() != "Sync" && fn.Name() != "Close" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	ptr, ok := sig.Recv().Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "File"
}

// errClassCharged reports whether a discarded error from fn is this
// analyzer's business: module functions, plus the os.File durability
// carve-out.
func (p *Pass) errClassCharged(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return p.InModule(fn.Pkg().Path()) || isFileSyncClose(fn)
}

func runErrClass(pass *Pass) error {
	if pass.Allowed() {
		return nil
	}
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	isErrExpr := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Type == nil || tv.IsNil() {
			return false
		}
		return types.Implements(tv.Type, errorIface)
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if (n.Op == token.EQL || n.Op == token.NEQ) && isErrExpr(n.X) && isErrExpr(n.Y) {
					pass.Reportf(n.OpPos,
						"errors compared with %s break under wrapping: classify with "+
							"errors.Is/errors.As (or IsBudget/IsOverload)", n.Op)
				}
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					pass.checkDiscardedCall(call, isErrExpr)
				}
			case *ast.GoStmt:
				pass.checkDiscardedCall(n.Call, isErrExpr)
			case *ast.DeferStmt:
				pass.checkDiscardedCall(n.Call, isErrExpr)
			case *ast.AssignStmt:
				pass.checkBlankErrorAssign(n, errorIface)
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall flags a statement-position call whose results
// include an error this analyzer charges (module functions, or the
// os.File durability carve-out).
func (p *Pass) checkDiscardedCall(call *ast.CallExpr, isErrExpr func(ast.Expr) bool) {
	fn := p.calleeFunc(call)
	if !p.errClassCharged(fn) {
		return
	}
	tv, ok := p.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return
	}
	if !tupleHasError(tv.Type) {
		return
	}
	if isFileSyncClose(fn) {
		p.Reportf(call.Pos(),
			"(*os.File).%s error silently discarded: an unseen sync/close failure breaks the "+
				"ack-after-commit durability contract; handle it, or justify with "+
				"\"//lint:errclass <why the drop is sound>\"", fn.Name())
		return
	}
	p.Reportf(call.Pos(),
		"result of %s.%s includes a typed error that is silently discarded: handle it, "+
			"or justify with \"//lint:errclass <why the drop is sound>\"",
		fn.Pkg().Name(), fn.Name())
}

// checkBlankErrorAssign flags `_ = f()` / `v, _ := g()` where the
// blanked result is an error from a module function.
func (p *Pass) checkBlankErrorAssign(assign *ast.AssignStmt, errorIface *types.Interface) {
	// Only the single-call multi-assign and 1:1 forms exist in Go.
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fn := p.calleeFunc(call)
		if !p.errClassCharged(fn) {
			return
		}
		tuple, ok := p.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok {
			return
		}
		// The comma-ok classifier shape `_, ok := IsBudget(err)` is
		// itself classification: the consumed bool carries the class, so
		// blanking the typed error loses nothing.
		for i, lhs := range assign.Lhs {
			if i < tuple.Len() && !isBlank(lhs) {
				if b, ok := tuple.At(i).Type().Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
					return
				}
			}
		}
		for i, lhs := range assign.Lhs {
			if i >= tuple.Len() {
				break
			}
			if isBlank(lhs) && types.Implements(tuple.At(i).Type(), errorIface) {
				p.Reportf(lhs.Pos(),
					"error result of %s.%s assigned to _: classify it, or justify with "+
						"\"//lint:errclass <why the drop is sound>\"", fn.Pkg().Name(), fn.Name())
			}
		}
		return
	}
	for i, lhs := range assign.Lhs {
		if !isBlank(lhs) || i >= len(assign.Rhs) {
			continue
		}
		call, ok := assign.Rhs[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := p.calleeFunc(call)
		if !p.errClassCharged(fn) {
			continue
		}
		tv, ok := p.TypesInfo.Types[call]
		if ok && tv.Type != nil && tupleHasError(tv.Type) {
			if isFileSyncClose(fn) {
				p.Reportf(lhs.Pos(),
					"(*os.File).%s error assigned to _: an unseen sync/close failure breaks the "+
						"ack-after-commit durability contract; handle it, or justify with "+
						"\"//lint:errclass <why the drop is sound>\"", fn.Name())
				continue
			}
			p.Reportf(lhs.Pos(),
				"error result of %s.%s assigned to _: classify it, or justify with "+
					"\"//lint:errclass <why the drop is sound>\"", fn.Pkg().Name(), fn.Name())
		}
	}
}

// calleeFunc resolves the called function or method, unwrapping
// parentheses and generic instantiations. Calls through function values
// or literals resolve to nil and are out of scope.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
		case *ast.IndexExpr:
			fun = f.X
		case *ast.IndexListExpr:
			fun = f.X
		case *ast.Ident:
			fn, _ := p.TypesInfo.Uses[f].(*types.Func)
			return fn
		case *ast.SelectorExpr:
			fn, _ := p.TypesInfo.Uses[f.Sel].(*types.Func)
			return fn
		default:
			return nil
		}
	}
}

// tupleHasError reports whether a call-result type (single value or
// tuple) includes a component implementing error.
func tupleHasError(t types.Type) bool {
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Implements(tuple.At(i).Type(), errorIface) {
				return true
			}
		}
		return false
	}
	return types.Implements(t, errorIface)
}

// isBlank reports whether an expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
