package analysis_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// srcRoot is the GOPATH-style fixture tree; go tooling ignores testdata
// directories, so the deliberate violations inside never trip the
// repo-wide lint.
const srcRoot = "testdata/src"

// fixturePatterns maps each analyzer to its fixture subtree.
var fixturePatterns = map[string]string{
	"wallclock":    "wallclock/...",
	"unchargedmem": "unchargedmem/...",
	"detorder":     "detorder/...",
	"errclass":     "errclass/...",
	"docexport":    "docexport/...",
}

func TestWallclockFixtures(t *testing.T) {
	analysistest.Run(t, srcRoot, analysis.Wallclock, fixturePatterns["wallclock"])
}

func TestUnchargedMemFixtures(t *testing.T) {
	analysistest.Run(t, srcRoot, analysis.UnchargedMem, fixturePatterns["unchargedmem"])
}

func TestDetOrderFixtures(t *testing.T) {
	analysistest.Run(t, srcRoot, analysis.DetOrder, fixturePatterns["detorder"])
}

func TestErrClassFixtures(t *testing.T) {
	analysistest.Run(t, srcRoot, analysis.ErrClass, fixturePatterns["errclass"])
}

func TestDocExportFixtures(t *testing.T) {
	analysistest.Run(t, srcRoot, analysis.DocExport, fixturePatterns["docexport"])
}

// recorder satisfies analysistest.TB, capturing failures instead of
// failing the test.
type recorder struct{ errs []string }

func (r *recorder) Errorf(format string, args ...any) {
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
}

// TestFixturesFailWhenCheckDisabled proves the fixtures are not
// vacuously green: running a disabled stand-in for each analyzer over
// its own fixtures must leave want expectations unmatched. If this
// fails for an analyzer, its fixtures no longer witness the invariant.
func TestFixturesFailWhenCheckDisabled(t *testing.T) {
	for _, a := range analysis.All() {
		pattern, ok := fixturePatterns[a.Name]
		if !ok {
			t.Errorf("%s: no fixture subtree registered", a.Name)
			continue
		}
		disabled := &analysis.Analyzer{Name: a.Name, Doc: a.Doc,
			Run: func(*analysis.Pass) error { return nil }}
		rec := &recorder{}
		analysistest.Run(rec, srcRoot, disabled, pattern)
		if len(rec.errs) == 0 {
			t.Errorf("%s: fixtures still pass with the check disabled", a.Name)
		}
	}
}

// TestEmptyDirectiveReasonsAreFindings pins the directive contract: an
// allow without a reason and a suppression without a justification are
// themselves findings, and neither takes effect (the suppressed site is
// still reported).
func TestEmptyDirectiveReasonsAreFindings(t *testing.T) {
	u, err := analysis.LoadFixtureTree(srcRoot, "directives/empty")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	fs, err := analysis.Run([]*analysis.Analyzer{analysis.Wallclock}, u)
	if err != nil {
		t.Fatalf("running wallclock: %v", err)
	}
	var msgs []string
	for _, f := range fs {
		msgs = append(msgs, f.Message)
	}
	for _, want := range []string{"needs a reason", "needs a justification", "reference to time.Now"} {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding containing %q in %v", want, msgs)
		}
	}
	if len(fs) != 3 {
		t.Errorf("got %d findings, want 3: %v", len(fs), msgs)
	}
}

// TestByName pins the registry the sdradlint -analyzers flag uses.
func TestByName(t *testing.T) {
	for _, a := range analysis.All() {
		if got := analysis.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v; want the registered analyzer", a.Name, got)
		}
	}
	if got := analysis.ByName("nosuch"); got != nil {
		t.Errorf("ByName(nosuch) = %v, want nil", got)
	}
}
