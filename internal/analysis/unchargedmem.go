package analysis

import (
	"go/ast"
	"go/types"
)

// unchargedFact marks a function whose declaration carries
// "//lint:uncharged": a kernel-side accessor that touches simulated
// memory without permission checks or virtual-cycle charges (mem.Peek64
// and mem.Poke64 today). The defining package exports the fact;
// downstream packages may only reach such functions if they are
// themselves sanctioned via "//lint:allow unchargedmem <reason>" (the
// allocator, whose in-band metadata sweep is the one consumer the
// cycle-parity argument accounts for).
type unchargedFact struct{}

func (unchargedFact) AFact() {}

// allowUnchargedFact marks a package sanctioned to call uncharged
// accessors.
type allowUnchargedFact struct{}

func (allowUnchargedFact) AFact() {}

// UnchargedMem reports calls to uncharged kernel-side memory accessors
// from unsanctioned packages. Everything outside the sanctioned set
// must go through the charged Load/Store paths so cycle accounting
// stays exact — an uncharged read in a hot path would silently skew the
// cycle-parity oracle and the sustainability numbers derived from it.
var UnchargedMem = &Analyzer{
	Name: "unchargedmem",
	Doc: "restrict //lint:uncharged memory accessors (Peek64/Poke64) to the " +
		"defining package and packages sanctioned with //lint:allow unchargedmem",
	Run: runUnchargedMem,
}

func runUnchargedMem(pass *Pass) error {
	// Export the uncharged marks declared by this package, whether or
	// not the package itself is exempt from the use check.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && hasDirective(fd.Doc, "uncharged") {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					pass.ExportObjectFact(obj, unchargedFact{})
				}
			}
		}
	}
	if pass.Allowed() {
		pass.ExportPackageFact(allowUnchargedFact{})
		return nil
	}
	//lint:detorder findings are sorted by the driver, so map order is harmless here
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
			continue
		}
		if _, marked := pass.ObjectFact(fn, unchargedFact{}); !marked {
			continue
		}
		pass.Reportf(id.Pos(),
			"%s.%s is an uncharged kernel-side accessor: use the charged Load/Store "+
				"paths so cycle accounting stays exact, or sanction this package with "+
				"\"//lint:allow unchargedmem <reason>\"",
			fn.Pkg().Name(), fn.Name())
	}
	return nil
}

// hasDirective reports whether a comment group contains the exact
// "//lint:<verb>" directive.
func hasDirective(doc *ast.CommentGroup, verb string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if v, _, ok := parseDirective(c.Text); ok && v == verb {
			return true
		}
	}
	return false
}
