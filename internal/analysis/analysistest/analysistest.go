// Package analysistest runs sdradlint analyzers over fixture packages,
// in the style of golang.org/x/tools/go/analysis/analysistest: fixture
// sources carry "// want" comments holding regular expressions (as
// quoted Go strings) that must match the diagnostics reported on their
// line, and the runner fails the test on any mismatch in either
// direction — a missing diagnostic and an unexpected diagnostic are
// both failures.
//
// Fixtures live in GOPATH-style trees (testdata/src/<importpath>/) so
// they may import each other by relative path; the Go toolchain ignores
// testdata directories, so fixture packages can contain deliberate
// invariant violations without tripping the repo-wide lint.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// TB is the subset of testing.TB the runner needs. Tests pass a
// *testing.T; the lint suite's self-test passes a recorder instead, to
// prove the fixtures fail when a check is disabled.
type TB interface {
	Errorf(format string, args ...any)
}

// expectation is one "// want" regexp anchored to a file and line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

// wantMarker locates the expectation list inside a comment: everything
// after the first "// want " marker, parsed as quoted Go strings. The
// mandatory trailing space keeps prose like "// wanted" from matching.
var wantMarker = regexp.MustCompile(`// ?want (.*)`)

// Run loads the fixture packages under srcRoot matched by patterns,
// applies the analyzer, and checks its findings against the fixtures'
// "// want" comments. It returns the findings for callers that assert
// beyond positions and messages.
func Run(t TB, srcRoot string, a *analysis.Analyzer, patterns ...string) []analysis.Finding {
	absRoot, err := filepath.Abs(srcRoot)
	if err != nil {
		t.Errorf("analysistest: resolving %s: %v", srcRoot, err)
		return nil
	}
	u, err := analysis.LoadFixtureTree(absRoot, patterns...)
	if err != nil {
		t.Errorf("analysistest: loading fixtures under %s: %v", srcRoot, err)
		return nil
	}
	findings, err := analysis.Run([]*analysis.Analyzer{a}, u)
	if err != nil {
		t.Errorf("analysistest: running %s: %v", a.Name, err)
		return nil
	}
	wants := collectWants(t, u)

	// Claim findings against expectations by (file, line); whatever is
	// left on either side is a failure.
	type key struct {
		file string
		line int
	}
	unclaimed := make(map[key][]analysis.Finding)
	for _, f := range findings {
		unclaimed[key{absPath(f.File), f.Line}] = append(unclaimed[key{absPath(f.File), f.Line}], f)
	}
	for _, w := range wants {
		k := key{w.file, w.line}
		matched := -1
		for i, f := range unclaimed[k] {
			if w.re.MatchString(f.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: no %s diagnostic matching %s", relPath(absRoot, w.file), w.line, a.Name, w.raw)
			continue
		}
		unclaimed[k] = append(unclaimed[k][:matched], unclaimed[k][matched+1:]...)
	}
	for _, f := range findings {
		k := key{absPath(f.File), f.Line}
		for i, uf := range unclaimed[k] {
			if uf == f {
				t.Errorf("unexpected diagnostic: %s", f.String())
				unclaimed[k] = append(unclaimed[k][:i], unclaimed[k][i+1:]...)
				break
			}
		}
	}
	return findings
}

// collectWants scans the target packages' comments for expectations.
func collectWants(t TB, u *analysis.Universe) []expectation {
	var wants []expectation
	for _, pkg := range u.Pkgs {
		if !pkg.Target {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantMarker.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					rest := strings.TrimSpace(m[1])
					for rest != "" {
						q, err := strconv.QuotedPrefix(rest)
						if err != nil {
							t.Errorf("%s:%d: malformed want expectation %q (quoted Go strings expected)",
								pos.Filename, pos.Line, rest)
							break
						}
						rest = strings.TrimSpace(rest[len(q):])
						text, err := strconv.Unquote(q)
						if err != nil {
							t.Errorf("%s:%d: unquoting want expectation %s: %v", pos.Filename, pos.Line, q, err)
							continue
						}
						re, err := regexp.Compile(text)
						if err != nil {
							t.Errorf("%s:%d: compiling want expectation %s: %v", pos.Filename, pos.Line, q, err)
							continue
						}
						wants = append(wants, expectation{file: absPath(pos.Filename), line: pos.Line, re: re, raw: q})
					}
				}
			}
		}
	}
	return wants
}

// absPath normalizes a path for matching findings (reported relative to
// the working directory) against fileset positions (absolute).
func absPath(p string) string {
	abs, err := filepath.Abs(p)
	if err != nil {
		return filepath.Clean(p)
	}
	return abs
}

// relPath renders a fixture file relative to the tree root for messages.
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}
