package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// Analyzer describes one invariant check: a name (used in directives and
// output), a doc string, and a Run function applied to each package.
// The API deliberately mirrors golang.org/x/tools/go/analysis so the
// suite can migrate to the upstream framework wholesale if the
// dependency ever becomes available; only the driver would change.
type Analyzer struct {
	// Name identifies the analyzer in findings, in suppression
	// directives ("//lint:<name> <justification>") and in package
	// exemptions ("//lint:allow <name> <reason>").
	Name string
	// Doc is a short description of the invariant the analyzer
	// enforces, shown by `sdradlint -list`.
	Doc string
	// Run applies the check to one type-checked package.
	Run func(*Pass) error
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Fact is a marker interface for analyzer facts. A fact is a claim an
// analyzer attaches to a package or object while analyzing its defining
// package; downstream packages (analyzed later, in dependency order)
// can query it. Exemptions and sanctioned-function marks are facts, so
// policy travels with the code that declares it instead of living in
// path lists inside the driver.
type Fact interface{ AFact() }

// Pass carries one analyzer's view of one package: syntax, types, the
// shared fact store, and the Report sink. It mirrors analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the parsed non-test source files of the package.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// InModule reports whether an import path belongs to the analyzed
	// universe (the module under lint, or the fixture tree in tests) as
	// opposed to the standard library. Analyzers use it to scope checks
	// to our own code.
	InModule func(path string) bool

	facts *factStore
	diags *[]Diagnostic
	// suppressLines maps filename -> line numbers covered by a
	// "//lint:<name> <justification>" suppression for this analyzer.
	suppressLines map[string]map[int]bool
	pkgAllowed    bool
}

// Reportf records a finding at pos unless a same-line or preceding-line
// "//lint:<name> <justification>" directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.siteSuppressed(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Allowed reports whether the package under analysis carries a
// "//lint:allow <name> <reason>" directive on (or immediately above)
// its package clause, exempting the whole package from this analyzer.
func (p *Pass) Allowed() bool { return p.pkgAllowed }

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.exportPackage(p.Pkg, fact)
}

// PackageFact reports whether pkg carries a fact with the same dynamic
// type as sample, returning it if so.
func (p *Pass) PackageFact(pkg *types.Package, sample Fact) (Fact, bool) {
	return p.facts.packageFact(pkg, sample)
}

// ExportObjectFact attaches fact to obj, which must belong to the
// package under analysis.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.facts.exportObject(obj, fact)
}

// ObjectFact reports whether obj carries a fact with the same dynamic
// type as sample, returning it if so.
func (p *Pass) ObjectFact(obj types.Object, sample Fact) (Fact, bool) {
	return p.facts.objectFact(obj, sample)
}

// factStore holds the facts exported by one analyzer across an entire
// run. Object identity is sound as a key because the loader type-checks
// every module package from source in one shared universe, so the
// *types.Func seen by the defining package is the same object seen by
// its importers.
type factStore struct {
	pkg map[*types.Package][]Fact
	obj map[types.Object][]Fact
}

func newFactStore() *factStore {
	return &factStore{
		pkg: make(map[*types.Package][]Fact),
		obj: make(map[types.Object][]Fact),
	}
}

func (s *factStore) exportPackage(pkg *types.Package, f Fact) {
	s.pkg[pkg] = append(s.pkg[pkg], f)
}

func (s *factStore) exportObject(obj types.Object, f Fact) {
	s.obj[obj] = append(s.obj[obj], f)
}

func (s *factStore) packageFact(pkg *types.Package, sample Fact) (Fact, bool) {
	return matchFact(s.pkg[pkg], sample)
}

func (s *factStore) objectFact(obj types.Object, sample Fact) (Fact, bool) {
	return matchFact(s.obj[obj], sample)
}

func matchFact(facts []Fact, sample Fact) (Fact, bool) {
	want := reflect.TypeOf(sample)
	for _, f := range facts {
		if reflect.TypeOf(f) == want {
			return f, true
		}
	}
	return nil, false
}

// Directive syntax. Two forms, both exact-prefix "//lint:" comments (no
// space after "//", so ordinary prose never matches):
//
//	//lint:allow <analyzer> <reason>   — package-wide exemption; must sit
//	                                     on or immediately above the
//	                                     package clause.
//	//lint:<analyzer> <justification>  — suppresses findings of that
//	                                     analyzer on the directive's line
//	                                     and the line below it.
//	//lint:uncharged                   — declaration mark consumed by the
//	                                     unchargedmem analyzer.
//
// A suppression with an empty justification is itself a finding: the
// point of the annotation is a reviewable reason, not a mute button.
const directivePrefix = "//lint:"

// prepareDirectives scans the package's comments once, recording
// package-level allows and per-line suppressions for this analyzer.
func (p *Pass) prepareDirectives() {
	name := p.Analyzer.Name
	suppressLines := make(map[string]map[int]bool)
	for _, f := range p.Files {
		fileName := p.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dir, rest, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				switch dir {
				case "allow":
					an, reason, _ := strings.Cut(rest, " ")
					if an != name {
						continue
					}
					if strings.TrimSpace(reason) == "" {
						*p.diags = append(*p.diags, Diagnostic{Pos: c.Pos(),
							Message: fmt.Sprintf("lint:allow %s directive needs a reason", name)})
						continue
					}
					// The exemption must be anchored to the package
					// clause, not buried mid-file.
					if pos.Line <= p.Fset.Position(f.Package).Line {
						p.pkgAllowed = true
					} else {
						*p.diags = append(*p.diags, Diagnostic{Pos: c.Pos(),
							Message: fmt.Sprintf("lint:allow %s must be on or above the package clause", name)})
					}
				case name:
					if strings.TrimSpace(rest) == "" {
						*p.diags = append(*p.diags, Diagnostic{Pos: c.Pos(),
							Message: fmt.Sprintf("lint:%s directive needs a justification", name)})
						continue
					}
					if suppressLines[fileName] == nil {
						suppressLines[fileName] = make(map[int]bool)
					}
					suppressLines[fileName][pos.Line] = true
					suppressLines[fileName][pos.Line+1] = true
				}
			}
		}
	}
	p.suppressLines = suppressLines
}

// parseDirective splits a "//lint:<verb> <rest>" comment.
func parseDirective(text string) (verb, rest string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	body := text[len(directivePrefix):]
	verb, rest, _ = strings.Cut(body, " ")
	return verb, rest, verb != ""
}

// siteSuppressed reports whether a "//lint:<name>" directive covers pos.
func (p *Pass) siteSuppressed(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	return p.suppressLines[position.Filename][position.Line]
}
