package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package of the analyzed universe.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Target marks packages named by the load patterns (as opposed to
	// dependencies pulled in only so facts and types resolve). The
	// driver reports diagnostics for targets only.
	Target bool
}

// Universe is a set of packages type-checked from source against one
// shared token.FileSet and object space, in dependency order. Shared
// identity is what lets facts be keyed by *types.Object directly.
type Universe struct {
	Fset   *token.FileSet
	Pkgs   []*Package
	byPath map[string]*Package
}

// InModule reports whether path is part of the analyzed universe (as
// opposed to the standard library).
func (u *Universe) InModule(path string) bool {
	_, ok := u.byPath[path]
	return ok
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
}

// LoadPackages loads the module packages matched by patterns (plus
// their in-module dependencies) from source, resolving standard-library
// imports through the build cache's export data. dir is the directory
// the go tool runs in; patterns default to ./... .
//
// The go toolchain does the heavy lifting: `go list -deps -export`
// yields the full dependency set in dependency order with compiled
// export data for the standard library, so the loader needs neither
// network access nor any third-party machinery.
func LoadPackages(dir string, patterns ...string) (*Universe, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Pass 1: which packages did the patterns actually name?
	targetOut, err := goList(dir, append([]string{"list", "-json=ImportPath"}, patterns...))
	if err != nil {
		return nil, err
	}
	targets := make(map[string]bool)
	for _, p := range targetOut {
		targets[p.ImportPath] = true
	}

	// Pass 2: full dependency closure with export data.
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Module"}, patterns...)
	listed, err := goList(dir, args)
	if err != nil {
		return nil, err
	}

	u := &Universe{Fset: token.NewFileSet(), byPath: make(map[string]*Package)}
	stdExports := make(map[string]string)
	var moduleOrder []listedPackage
	for _, p := range listed {
		if p.Module == nil {
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
			continue
		}
		moduleOrder = append(moduleOrder, p)
	}

	imp := &universeImporter{
		u:  u,
		gc: importer.ForCompiler(u.Fset, "gc", exportLookup(stdExports)),
	}
	for _, p := range moduleOrder {
		pkg, err := u.check(p.ImportPath, p.Dir, p.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		pkg.Target = targets[p.ImportPath]
	}
	return u, nil
}

// goList runs a `go list` invocation in dir and decodes its JSON stream.
func goList(dir string, args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args[:2], " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup adapts a path->file map to the gc importer's lookup.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

// check parses and type-checks one package into the universe. Callers
// must check dependencies first (LoadPackages relies on `go list -deps`
// dependency order; the fixture loader recurses explicitly).
func (u *Universe) check(path, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(u.Fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, u.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	u.Pkgs = append(u.Pkgs, pkg)
	u.byPath[path] = pkg
	return pkg, nil
}

// universeImporter resolves in-universe imports to their source-checked
// packages and everything else through gc export data.
type universeImporter struct {
	u  *Universe
	gc types.Importer
}

func (i *universeImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.u.byPath[path]; ok {
		return p.Types, nil
	}
	return i.gc.Import(path)
}

// stdlibExports memoizes on-demand export-data resolution for standard
// library packages (used by the fixture loader, which has no upfront
// `go list -deps` pass).
var stdlibExports sync.Map // import path -> export file

// stdlibLookup resolves a stdlib import path to its export data file by
// asking the go tool, caching across calls.
func stdlibLookup(path string) (io.ReadCloser, error) {
	if f, ok := stdlibExports.Load(path); ok {
		return os.Open(f.(string))
	}
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	f := strings.TrimSpace(string(out))
	if f == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	stdlibExports.Store(path, f)
	return os.Open(f)
}

// LoadFixtureTree loads GOPATH-style fixture packages rooted at srcRoot
// (testdata/src in analysistest terms). Each pattern is an import path
// relative to srcRoot; a trailing "/..." matches the subtree. Fixture
// packages may import each other by those relative paths and may import
// the standard library.
func LoadFixtureTree(srcRoot string, patterns ...string) (*Universe, error) {
	u := &Universe{Fset: token.NewFileSet(), byPath: make(map[string]*Package)}
	l := &fixtureLoader{
		u:       u,
		srcRoot: srcRoot,
		gc:      importer.ForCompiler(u.Fset, "gc", stdlibLookup),
		loading: make(map[string]bool),
	}

	var paths []string
	for _, pat := range patterns {
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			expanded, err := fixtureDirs(srcRoot, sub)
			if err != nil {
				return nil, err
			}
			paths = append(paths, expanded...)
			continue
		}
		paths = append(paths, pat)
	}
	sort.Strings(paths)
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkg.Target = true
	}
	return u, nil
}

// fixtureDirs finds every directory under srcRoot/sub containing .go
// files, returned as srcRoot-relative import paths.
func fixtureDirs(srcRoot, sub string) ([]string, error) {
	var out []string
	root := filepath.Join(srcRoot, sub)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(srcRoot, path)
				if err != nil {
					return err
				}
				out = append(out, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	return out, err
}

// fixtureLoader type-checks fixture packages recursively on demand.
type fixtureLoader struct {
	u       *Universe
	srcRoot string
	gc      types.Importer
	loading map[string]bool
}

func (l *fixtureLoader) load(path string) (*Package, error) {
	if p, ok := l.u.byPath[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through fixture package %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %v", path, err)
	}
	var goFiles []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("fixture package %q has no Go files", path)
	}
	sort.Strings(goFiles)
	return l.u.check(path, dir, goFiles, (*fixtureImporter)(l))
}

// fixtureImporter resolves fixture-tree imports first, then stdlib.
type fixtureImporter fixtureLoader

func (i *fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(i.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		p, err := (*fixtureLoader)(i).load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return i.gc.Import(path)
}
