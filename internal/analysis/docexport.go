package analysis

import (
	"go/ast"
	"strings"
)

// DocExport requires a doc comment on every exported top-level
// declaration of publicly importable packages (not main, not under
// internal/), so `go doc` actually explains the API. This is the
// migrated exported-symbol lint that previously lived as an AST walker
// in guardrail_test.go; grouped declarations inherit the group's doc
// comment, and methods on unexported receivers are skipped, exactly as
// before.
var DocExport = &Analyzer{
	Name: "docexport",
	Doc: "require doc comments on exported declarations of publicly " +
		"importable packages",
	Run: runDocExport,
}

func runDocExport(pass *Pass) error {
	if pass.Allowed() || pass.Pkg.Name() == "main" {
		return nil
	}
	for _, seg := range strings.Split(pass.Pkg.Path(), "/") {
		if seg == "internal" {
			return nil
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				// Methods count: an exported method on an exported type
				// is API surface too. Unexported receivers are skipped.
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedRecv(d.Recv) {
					continue
				}
				if d.Doc == nil {
					pass.Reportf(d.Pos(), "exported func %s has no doc comment", d.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := d.Doc != nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && !groupDoc {
							pass.Reportf(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && s.Doc == nil && !groupDoc {
								pass.Reportf(n.Pos(), "exported var/const %s has no doc comment", n.Name)
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
