package analysis

import "go/types"

// allowWallClockFact marks a package that declared itself exempt from
// the wall-clock ban via "//lint:allow wallclock <reason>" — the
// virtual clock itself (internal/vclock owns the one sanctioned
// deadline-to-cycles conversion) and binaries that report host-side
// timings. The exemption is a fact the package states about itself, not
// a path list in the driver, so moving or adding a package never
// silently changes coverage.
type allowWallClockFact struct{}

func (allowWallClockFact) AFact() {}

// wallForbidden is the set of time-package functions that read the wall
// clock. Library code reaching any of them breaks virtual-time
// determinism: two runs with the same seed would charge different
// cycles, and the campaign engine's byte-identical-trace oracle dies.
var wallForbidden = map[string]bool{"Now": true, "Since": true, "Until": true}

// Wallclock reports any reference to time.Now, time.Since, or
// time.Until in library code. It is the type-aware port of the old
// string/AST guardrail: because it keys on the resolved *types.Func
// rather than the selector text, aliased imports (tm "time"),
// dot-imports, and function-value indirection (f := time.Now; f())
// cannot dodge it, and a local package named "time" cannot false-
// positive it.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads (time.Now/Since/Until) in library code; " +
		"virtual time must be the only clock",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	if pass.Allowed() {
		pass.ExportPackageFact(allowWallClockFact{})
		return nil
	}
	//lint:detorder findings are sorted by the driver, so map order is harmless here
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallForbidden[fn.Name()] {
			continue
		}
		pass.Reportf(id.Pos(),
			"reference to time.%s in library code breaks virtual-time determinism "+
				"(route through internal/vclock, or exempt the package with \"//lint:allow wallclock <reason>\")",
			fn.Name())
	}
	return nil
}
