package analysis

import (
	"go/ast"
	"go/types"
)

// DetOrder reports `range` statements over map values. Map iteration
// order is randomized per run, so any map range feeding a trace, a
// survivor digest, aggregated statistics, or emitted text is a
// determinism bug: the campaign engine's same-seed oracle compares
// traces byte for byte, and one unsorted range turns a real regression
// diff into noise.
//
// Two escapes exist. The key-collection idiom
//
//	for k := range m {
//	    keys = append(keys, k)
//	}
//
// is recognized and allowed (the collected keys are presumed sorted
// before use — that part is beyond static reach and stays on the
// reviewer). Every other map range must carry a
// "//lint:detorder <justification>" directive on its line or the line
// above, turning "this order cannot matter" into a reviewable claim.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc: "flag map iteration in library code unless it is the sort-me-later " +
		"key-collection idiom or carries a //lint:detorder justification",
	Run: runDetOrder,
}

func runDetOrder(pass *Pass) error {
	if pass.Allowed() {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollect(pass, rs) {
				return true
			}
			pass.Reportf(rs.For,
				"map iteration order is nondeterministic: sort the keys first, or "+
					"justify with \"//lint:detorder <why order cannot matter>\"")
			return true
		})
	}
	return nil
}

// isKeyCollect recognizes the exact `for k := range m { s = append(s, k) }`
// shape: key-only range whose body is a single self-append of the key.
func isKeyCollect(pass *Pass, rs *ast.RangeStmt) bool {
	if rs.Value != nil {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	dst, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	// `s = append(s, k)` must append to the same slice it assigns.
	src, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	dstObj := pass.TypesInfo.Uses[dst]
	if dstObj == nil || pass.TypesInfo.Uses[src] != dstObj {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := pass.TypesInfo.Defs[key]
	if keyObj == nil {
		keyObj = pass.TypesInfo.Uses[key]
	}
	return keyObj != nil && pass.TypesInfo.Uses[arg] == keyObj
}
