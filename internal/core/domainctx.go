package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/pku"
)

// DomainCtx is the view of the system that code executing inside a
// domain receives. All memory operations go through the domain's PKRU
// value, so touching memory owned by another domain (or the root) raises
// a domain violation.
//
// Two access styles are provided:
//
//   - The error-returning methods (Load, Store, ...) surface faults as
//     error values, for code that wants to inspect them.
//   - The Must* methods emulate the hardware trap: a fault immediately
//     unwinds execution to the Enter boundary (via an internal panic that
//     never escapes the package), exactly as a SIGSEGV would abort the
//     compartment in the C implementation. Application code after a
//     faulting Must* access never runs — matching real-machine semantics.
//
// Every operation additionally checks the run's virtual-cycle budget
// (EnterWithBudget): an exhausted budget preempts the run the same way a
// fault does, surfacing as a *BudgetError at the Enter boundary.
type DomainCtx struct {
	sys *System
	d   *Domain
}

// UDI returns the executing domain's index.
func (c *DomainCtx) UDI() UDI { return c.d.udi }

// Key returns the executing domain's protection key.
func (c *DomainCtx) Key() pku.Key { return c.d.key }

// pkru returns the PKRU register value currently installed on the
// simulated hardware thread. This is deliberately NOT pkruFor(c.d): the
// rights in force are per-thread register state, so a ctx captured from
// an outer domain and used while a nested domain executes accesses memory
// with the nested domain's rights — exactly as on real hardware.
func (c *DomainCtx) pkru() pku.PKRU { return c.sys.pkru }

// trap aborts the compartment with cause, unwinding to Enter.
func (c *DomainCtx) trap(cause error) {
	panic(violationPanic{cause: cause})
}

// Violate explicitly raises a domain violation, unwinding to the Enter
// boundary. Domain code uses this when its own consistency checks fail.
func (c *DomainCtx) Violate(cause error) {
	if cause == nil {
		cause = fmt.Errorf("sdrad: explicit violation in domain %d", c.d.udi)
	}
	c.trap(cause)
}

// Alloc allocates n bytes on the domain heap.
func (c *DomainCtx) Alloc(n int) (mem.Addr, error) {
	c.preempt()
	return c.d.heap.Alloc(n)
}

// MustAlloc is Alloc with trap-on-failure semantics.
func (c *DomainCtx) MustAlloc(n int) mem.Addr {
	c.preempt()
	p, err := c.d.heap.Alloc(n)
	if err != nil {
		c.trap(err)
	}
	return p
}

// Free releases a domain heap allocation; a canary mismatch is returned
// as an error (and classified as a heap-canary detection by Enter if
// propagated).
func (c *DomainCtx) Free(p mem.Addr) error {
	c.preempt()
	return c.d.heap.Free(p)
}

// MustFree is Free with trap-on-failure semantics: a corrupted chunk
// aborts the compartment, like glibc's heap hardening calling abort().
func (c *DomainCtx) MustFree(p mem.Addr) {
	c.preempt()
	if err := c.d.heap.Free(p); err != nil {
		c.trap(err)
	}
}

// CheckHeap sweeps the domain heap's canaries.
func (c *DomainCtx) CheckHeap() error {
	c.preempt()
	return c.d.heap.CheckIntegrity()
}

// Load copies len(dst) bytes from addr under the domain's PKRU.
func (c *DomainCtx) Load(addr mem.Addr, dst []byte) error {
	c.preempt()
	return c.sys.mem.LoadBytes(c.pkru(), addr, dst)
}

// Store copies src to addr under the domain's PKRU.
func (c *DomainCtx) Store(addr mem.Addr, src []byte) error {
	c.preempt()
	return c.sys.mem.StoreBytes(c.pkru(), addr, src)
}

// MustLoad is Load with trap-on-fault semantics.
func (c *DomainCtx) MustLoad(addr mem.Addr, dst []byte) {
	if err := c.Load(addr, dst); err != nil {
		c.trap(err)
	}
}

// MustStore is Store with trap-on-fault semantics.
func (c *DomainCtx) MustStore(addr mem.Addr, src []byte) {
	if err := c.Store(addr, src); err != nil {
		c.trap(err)
	}
}

// Load64 loads a little-endian uint64.
func (c *DomainCtx) Load64(addr mem.Addr) (uint64, error) {
	c.preempt()
	return c.sys.mem.Load64(c.pkru(), addr)
}

// Store64 stores a little-endian uint64.
func (c *DomainCtx) Store64(addr mem.Addr, v uint64) error {
	c.preempt()
	return c.sys.mem.Store64(c.pkru(), addr, v)
}

// MustLoad64 is Load64 with trap-on-fault semantics.
func (c *DomainCtx) MustLoad64(addr mem.Addr) uint64 {
	v, err := c.Load64(addr)
	if err != nil {
		c.trap(err)
	}
	return v
}

// MustStore64 is Store64 with trap-on-fault semantics.
func (c *DomainCtx) MustStore64(addr mem.Addr, v uint64) {
	if err := c.Store64(addr, v); err != nil {
		c.trap(err)
	}
}

// WithFrame pushes a canaried stack frame of size bytes, runs fn with the
// frame, and pops it, validating the canary. A smashed canary aborts the
// compartment (the __stack_chk_fail path).
func (c *DomainCtx) WithFrame(size int, fn func(base mem.Addr) error) error {
	c.preempt()
	fr, err := c.d.stack.Push(size)
	if err != nil {
		return err
	}
	if err := fn(fr.Base); err != nil {
		// Application error: still validate + pop the frame.
		if perr := c.d.stack.Pop(fr); perr != nil {
			c.trap(perr)
		}
		return err
	}
	if err := c.d.stack.Pop(fr); err != nil {
		c.trap(err)
	}
	return nil
}

// StackRemaining returns the bytes left on the domain stack.
func (c *DomainCtx) StackRemaining() int { return c.d.stack.Remaining() }

// Enter runs fn in a nested domain. The nested domain's violations are
// contained: they rewind only the nested domain, and the error is
// delivered here, where this domain can take an alternate action.
func (c *DomainCtx) Enter(udi UDI, fn func(*DomainCtx) error) error {
	c.preempt()
	return c.sys.Enter(udi, fn)
}
