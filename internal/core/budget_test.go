package core

import (
	"testing"
)

func newBudgetSystem(t *testing.T) (*System, *Domain) {
	t.Helper()
	sys := NewSystem(DefaultConfig())
	d, err := sys.CreateDomain(DomainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, d
}

func TestEnterWithBudgetZeroIsUnlimited(t *testing.T) {
	sys, d := newBudgetSystem(t)
	err := sys.EnterWithBudget(d.UDI(), 0, func(c *DomainCtx) error {
		p := c.MustAlloc(4096)
		for i := 0; i < 100; i++ {
			c.MustStore(p, make([]byte, 4096))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("unbudgeted run failed: %v", err)
	}
}

func TestEnterWithBudgetPreempts(t *testing.T) {
	sys, d := newBudgetSystem(t)
	const budget = 50_000
	err := sys.EnterWithBudget(d.UDI(), budget, func(c *DomainCtx) error {
		p := c.MustAlloc(4096)
		for {
			c.MustStore(p, make([]byte, 4096))
		}
	})
	b, ok := IsBudget(err)
	if !ok {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if b.UDI != d.UDI() {
		t.Errorf("UDI = %d, want %d", b.UDI, d.UDI())
	}
	if b.Budget != budget {
		t.Errorf("Budget = %d, want %d", b.Budget, budget)
	}
	if b.Used < budget {
		t.Errorf("Used = %d, want >= budget %d", b.Used, budget)
	}

	st := d.Stats()
	if st.Preemptions != 1 {
		t.Errorf("Preemptions = %d, want 1", st.Preemptions)
	}
	if st.Violations != 0 {
		t.Errorf("Violations = %d, want 0 (preemption is not a detection)", st.Violations)
	}
	if st.Rewinds != 1 {
		t.Errorf("Rewinds = %d, want 1 (the domain was rewound)", st.Rewinds)
	}
	if st.RewindCycles() == 0 {
		t.Error("rewind cycles not accounted")
	}
}

// TestEnterWithBudgetDiscardsHeap: a preempted run's heap writes are
// discarded, like a violated run's.
func TestEnterWithBudgetDiscardsHeap(t *testing.T) {
	sys, d := newBudgetSystem(t)
	// A clean run persists its allocation across entries...
	var addr uint64
	err := sys.Enter(d.UDI(), func(c *DomainCtx) error {
		p := c.MustAlloc(64)
		addr = uint64(p)
		c.MustStore(p, []byte("persisted"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// ...but a preempted run resets the whole heap, including it.
	err = sys.EnterWithBudget(d.UDI(), 10_000, func(c *DomainCtx) error {
		buf := make([]byte, 4096)
		p := c.MustAlloc(len(buf))
		for {
			c.MustStore(p, buf)
		}
	})
	if _, ok := IsBudget(err); !ok {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	err = sys.Enter(d.UDI(), func(c *DomainCtx) error {
		p := c.MustAlloc(64)
		if uint64(p) != addr {
			t.Errorf("post-preemption alloc at %#x, want pristine heap reusing %#x", p, addr)
		}
		buf := make([]byte, 9)
		c.MustLoad(p, buf)
		if string(buf) == "persisted" {
			t.Error("heap data survived the discard")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEnterWithBudgetNestedInheritsTighterLimit: a nested enter cannot
// escape the outer budget — the inner run is preempted by the outer
// limit even with a generous inner budget.
func TestEnterWithBudgetNestedInheritsTighterLimit(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	outer, err := sys.CreateDomain(DomainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := sys.CreateDomain(DomainConfig{})
	if err != nil {
		t.Fatal(err)
	}

	err = sys.EnterWithBudget(outer.UDI(), 50_000, func(c *DomainCtx) error {
		// The inner enter asks for far more than the outer has left.
		return sys.EnterWithBudget(inner.UDI(), 1<<40, func(ci *DomainCtx) error {
			p := ci.MustAlloc(4096)
			for {
				ci.MustStore(p, make([]byte, 4096))
			}
		})
	})
	b, ok := IsBudget(err)
	if !ok {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	// The inner enter hit the limit, was rewound there, and its
	// BudgetError propagated out as an application error of the outer
	// run (the outer domain itself exited without rewinding).
	if b.UDI != inner.UDI() {
		t.Errorf("preempted UDI = %d, want inner %d", b.UDI, inner.UDI())
	}
	if inner.Stats().Preemptions != 1 {
		t.Errorf("inner preemptions = %d, want 1", inner.Stats().Preemptions)
	}
	if outer.Stats().Preemptions != 0 {
		t.Errorf("outer preemptions = %d, want 0", outer.Stats().Preemptions)
	}
}
