package core

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/pku"
	"repro/internal/trace"
)

// This file implements the data-passing extensions of the SDRaD design:
//
//   - Read-only sharing: a domain can be granted read (but not write)
//     access to another domain's protection key — the PKU Write-Disable
//     bit makes this a pure register configuration, with no page copies.
//     SDRaD uses this for "protecting application integrity" setups
//     where workers may read shared configuration owned by the root.
//
//   - Heap adoption: when a domain exits for good, its heap pages can be
//     re-tagged to the default key and adopted by the trusted runtime
//     (sdrad_deinit with the keep-heap option). Results computed in the
//     domain become root-accessible without copying — pkey_mprotect is
//     per-page metadata, not data movement.
//
//   - Quarantine: a per-domain violation budget after which the runtime
//     refuses to re-enter the domain. The paper's service scenario bans
//     clients whose connections keep faulting; quarantine is the
//     mechanism end of that policy.

// ErrQuarantined is returned by Enter for domains that exceeded their
// violation budget.
var ErrQuarantined = errors.New("sdrad: domain quarantined")

// GrantRead gives domain viewer read-only access to the pages of domain
// owner. Writes by the viewer to the owner's pages still fault (PKU WD
// semantics). Either UDI may be RootUDI only for owner (the root's pages
// are key 0, which every domain can already read).
func (s *System) GrantRead(viewer, owner UDI) error {
	v, ok := s.domains[viewer]
	if !ok {
		return fmt.Errorf("%w: viewer UDI %d", ErrNoDomain, viewer)
	}
	o, ok := s.domains[owner]
	if !ok {
		return fmt.Errorf("%w: owner UDI %d", ErrNoDomain, owner)
	}
	if viewer == owner {
		return fmt.Errorf("sdrad: domain %d cannot share with itself", viewer)
	}
	if v.readKeys == nil {
		v.readKeys = make(map[pku.Key]bool)
	}
	v.readKeys[o.key] = true
	s.refreshPKRU(v)
	s.emit(trace.KindGrant, viewer, fmt.Sprintf("owner=%d", owner))
	return nil
}

// RevokeRead removes a read grant previously installed with GrantRead.
func (s *System) RevokeRead(viewer, owner UDI) error {
	v, ok := s.domains[viewer]
	if !ok {
		return fmt.Errorf("%w: viewer UDI %d", ErrNoDomain, viewer)
	}
	o, ok := s.domains[owner]
	if !ok {
		return fmt.Errorf("%w: owner UDI %d", ErrNoDomain, owner)
	}
	delete(v.readKeys, o.key)
	s.refreshPKRU(v)
	s.emit(trace.KindRevoke, viewer, fmt.Sprintf("owner=%d", owner))
	return nil
}

// refreshPKRU recomputes the domain's cached register value and
// reinstalls it if d is currently the innermost active domain, so grants
// take effect immediately (a WRPKRU on real hardware).
func (s *System) refreshPKRU(d *Domain) {
	d.pkru = pkruFor(d)
	if s.current() == d {
		s.pkru = d.pkru
		s.clock.Advance(s.cfg.Cost.WRPKRU)
	}
}

// SetViolationBudget quarantines the domain after max violations
// (max <= 0 means unlimited, the default).
func (s *System) SetViolationBudget(udi UDI, max int) error {
	d, ok := s.domains[udi]
	if !ok {
		return fmt.Errorf("%w: UDI %d", ErrNoDomain, udi)
	}
	d.maxViolations = max
	return nil
}

// Quarantined reports whether the domain has exhausted its violation
// budget.
func (s *System) Quarantined(udi UDI) (bool, error) {
	d, ok := s.domains[udi]
	if !ok {
		return false, fmt.Errorf("%w: UDI %d", ErrNoDomain, udi)
	}
	return d.quarantined(), nil
}

func (d *Domain) quarantined() bool {
	return d.maxViolations > 0 && d.stats.Violations >= uint64(d.maxViolations)
}

// AdoptHeap deinitializes domain udi but keeps its heap: every heap page
// is re-tagged to the root-protected key (pkey_mprotect — no data
// copies) and the heap handle is returned for trusted-side use. Child
// domains cannot touch adopted pages. The domain's stack is released and
// its protection key freed. This is the zero-copy result path of
// sdrad_deinit's keep-heap option.
func (s *System) AdoptHeap(udi UDI) (*alloc.Heap, error) {
	d, ok := s.domains[udi]
	if !ok {
		return nil, fmt.Errorf("%w: UDI %d", ErrNoDomain, udi)
	}
	for _, a := range s.active {
		if a == d {
			return nil, fmt.Errorf("%w: UDI %d", ErrDomainActive, udi)
		}
	}
	for _, r := range d.heap.Regions() {
		if err := s.mem.TagKey(r.Base, r.NPages, s.rootKey); err != nil {
			return nil, fmt.Errorf("sdrad: adopt heap of %d: %w", udi, err)
		}
	}
	if err := d.heap.Rekey(s.rootKey); err != nil {
		return nil, fmt.Errorf("sdrad: adopt heap of %d: %w", udi, err)
	}
	if err := d.stack.Release(); err != nil {
		return nil, fmt.Errorf("sdrad: adopt heap of %d: %w", udi, err)
	}
	if err := s.keys.Free(d.key); err != nil {
		return nil, fmt.Errorf("sdrad: adopt heap of %d: %w", udi, err)
	}
	s.clock.Advance(s.cfg.Cost.PkeyFree)
	delete(s.domains, udi)
	s.emit(trace.KindAdopt, udi, "")
	return d.heap, nil
}
