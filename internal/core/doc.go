// Package core implements Secure Domain Rewind and Discard (SDRaD) — the
// primary contribution of the reproduced paper.
//
// SDRaD compartmentalizes an application into isolated domains using
// hardware-assisted in-process isolation (Intel PKU). Each domain owns a
// private heap and stack tagged with a dedicated protection key; while a
// domain executes, the PKRU register grants access to that domain's key
// only, so a memory defect inside the domain can only corrupt the
// domain's own memory. When a pre-existing detection mechanism fires
// (domain violation, stack canary, heap canary, guard page, segfault),
// SDRaD *rewinds*: execution returns to the point where the domain was
// entered, and the domain's memory is *discarded* — reset to a pristine
// state — so the application continues running with corruption-free
// memory instead of being terminated.
//
// This package runs against the simulated machine substrate (internal/mem,
// internal/pku, internal/vclock); see DESIGN.md §2 for the substitution
// rationale. The public Go API for applications is the root package
// (sdrad); this package is the mechanism.
//
// # Invariants
//
//   - Single simulated hardware thread: a System and everything created
//     from it must be confined to one goroutine at a time (pools give
//     each worker its own System).
//   - Rewind-and-discard is total: after a *ViolationError or
//     *BudgetError for a domain, its stack is unwound to the Enter
//     point and its heap is pristine (scrubbed unless ZeroOnDiscard is
//     off). No partial state survives a detection.
//   - Determinism: given the same sequence of operations, virtual
//     cycles, detection outcomes, and rewinds are identical on every
//     run and at any GOMAXPROCS — the property the campaign oracles
//     (DESIGN.md §8) and budget preemption (deadlines map to cycle
//     budgets, not wall-clock timers) are built on.
//   - Violations never escape as panics: in-domain traps (violationPanic,
//     budgetPanic) are recovered at the Enter boundary and surface as
//     typed errors.
//
// See DESIGN.md §2 for the simulated-machine substitution argument and
// §9 for how batched execution shares one Enter across many calls.
package core
