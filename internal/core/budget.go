package core

import (
	"errors"
	"fmt"
)

// This file implements virtual-cycle budgets: a deterministic preemption
// mechanism for domain runs. A caller-supplied cycle budget (typically
// derived from a context deadline via vclock.CyclesUntilDeadline) bounds
// how many virtual cycles a single Enter may consume; when the budget is
// exhausted, the next simulated-machine operation traps, the domain is
// rewound and discarded exactly as for a memory-safety violation, and
// Enter returns a *BudgetError. Because the trigger is virtual time — not
// a wall-clock timer — a runaway run is cancelled at the same virtual
// cycle on every execution.

// BudgetError reports that a domain run exhausted its virtual-cycle
// budget and was preempted: the domain has been rewound and discarded,
// exactly as after a violation, but the event is not a memory-safety
// detection — it has its own type so callers can tell "the code was
// malicious/buggy" from "the code was slow".
type BudgetError struct {
	// UDI identifies the preempted domain.
	UDI UDI
	// Budget is the cycle budget that applied to the run — for a nested
	// enter that inherited a tighter outer limit, the effective
	// (inherited) budget, not the one the nested call requested.
	Budget uint64
	// Used is the number of virtual cycles the run had consumed when it
	// was preempted (Used >= Budget, measured at the trapping operation).
	Used uint64
	// sys identifies the System whose domain was rewound (see
	// ViolationError.sys).
	sys *System
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("sdrad: domain %d preempted: cycle budget %d exhausted (used %d)", e.UDI, e.Budget, e.Used)
}

// IsBudget reports whether err is (or wraps) a *BudgetError, returning it.
func IsBudget(err error) (*BudgetError, bool) {
	var b *BudgetError
	if errors.As(err, &b) {
		return b, true
	}
	return nil, false
}

// RewoundBy reports whether err records a rewind-and-discard of domain
// udi of system s specifically — a *ViolationError or *BudgetError
// raised for that exact domain. Callers holding resources in a domain
// use it to decide whether a run's error means "this domain was already
// discarded": a nested or foreign domain's rewind error propagating
// through an outer run does not rewind the outer domain, and because
// UDIs are only unique per System, the system identity is part of the
// check (two Supervisors both have a domain 1).
func RewoundBy(err error, s *System, udi UDI) bool {
	if s == nil {
		return false
	}
	if v, ok := IsViolation(err); ok && v.sys == s && v.UDI == udi {
		return true
	}
	if b, ok := IsBudget(err); ok && b.sys == s && b.UDI == udi {
		return true
	}
	return false
}

// budgetPanic unwinds execution from a preempted simulated-machine
// operation to the Enter boundary, emulating a preemption interrupt. It
// is recovered in runGuarded and never escapes the package.
type budgetPanic struct{}

// budgetSignal is the internal marker distinguishing "the budget timer
// fired" from application errors and violation signals on the way out of
// runGuarded.
type budgetSignal struct{}

func (*budgetSignal) Error() string { return "sdrad: cycle budget exhausted" }

// preempt traps when the current run's virtual-cycle budget is
// exhausted. It is checked at the start of every DomainCtx operation —
// the points where the simulated machine executes — so preemption is a
// deterministic function of the work performed, not of host timing.
// Domain code that performs no simulated-machine operations cannot be
// preempted, just as a loop that never yields cannot take an interrupt
// on a machine with interrupts masked.
func (c *DomainCtx) preempt() {
	if limit := c.sys.budgetLimit; limit != 0 && c.sys.clock.Cycles() >= limit {
		panic(budgetPanic{})
	}
}
