package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/mem"
	"repro/internal/pku"
	"repro/internal/vclock"
)

func newSys(t *testing.T) *System {
	t.Helper()
	return NewSystem(DefaultConfig())
}

func mustDomain(t *testing.T, s *System, udi UDI) *Domain {
	t.Helper()
	d, err := s.InitDomain(udi, DomainConfig{})
	if err != nil {
		t.Fatalf("InitDomain(%d): %v", udi, err)
	}
	return d
}

func TestInitAndDeinitDomain(t *testing.T) {
	s := newSys(t)
	d := mustDomain(t, s, 1)
	if d.UDI() != 1 {
		t.Errorf("UDI = %d", d.UDI())
	}
	if d.Key() == pku.DefaultKey {
		t.Error("domain got the default key")
	}
	if s.Domains() != 1 {
		t.Errorf("Domains = %d", s.Domains())
	}
	if err := s.DeinitDomain(1); err != nil {
		t.Fatalf("Deinit: %v", err)
	}
	if s.Domains() != 0 {
		t.Errorf("Domains after deinit = %d", s.Domains())
	}
	if s.Mem().MappedPages() != 0 {
		t.Errorf("pages leaked: %d", s.Mem().MappedPages())
	}
}

func TestInitErrors(t *testing.T) {
	s := newSys(t)
	if _, err := s.InitDomain(RootUDI, DomainConfig{}); !errors.Is(err, ErrDomainExists) {
		t.Errorf("init root = %v, want ErrDomainExists", err)
	}
	mustDomain(t, s, 1)
	if _, err := s.InitDomain(1, DomainConfig{}); !errors.Is(err, ErrDomainExists) {
		t.Errorf("double init = %v, want ErrDomainExists", err)
	}
	if err := s.DeinitDomain(42); !errors.Is(err, ErrNoDomain) {
		t.Errorf("deinit unknown = %v, want ErrNoDomain", err)
	}
	if _, err := s.Domain(42); !errors.Is(err, ErrNoDomain) {
		t.Errorf("Domain(42) = %v, want ErrNoDomain", err)
	}
}

func TestCreateDomainAssignsFreshUDIs(t *testing.T) {
	s := newSys(t)
	d1, err := s.CreateDomain(DomainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.CreateDomain(DomainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if d1.UDI() == d2.UDI() {
		t.Error("duplicate UDIs")
	}
}

func TestKeyExhaustion(t *testing.T) {
	s := newSys(t)
	// 15 allocatable keys, one reserved for the root-protected heap.
	for i := 0; i < 14; i++ {
		if _, err := s.CreateDomain(DomainConfig{HeapPages: 1, StackPages: 1}); err != nil {
			t.Fatalf("domain %d: %v", i, err)
		}
	}
	if _, err := s.CreateDomain(DomainConfig{}); !errors.Is(err, pku.ErrNoKeys) {
		t.Errorf("15th domain = %v, want ErrNoKeys", err)
	}
}

func TestEnterCleanExit(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	var inside bool
	err := s.Enter(1, func(c *DomainCtx) error {
		inside = true
		p := c.MustAlloc(64)
		c.MustStore(p, []byte("hello"))
		buf := make([]byte, 5)
		c.MustLoad(p, buf)
		if string(buf) != "hello" {
			return fmt.Errorf("bad read: %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if !inside {
		t.Fatal("fn did not run")
	}
	d, _ := s.Domain(1)
	st := d.Stats()
	if st.Entries != 1 || st.CleanExits != 1 || st.Violations != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEnterUnknownDomain(t *testing.T) {
	s := newSys(t)
	if err := s.Enter(9, func(*DomainCtx) error { return nil }); !errors.Is(err, ErrNoDomain) {
		t.Errorf("err = %v, want ErrNoDomain", err)
	}
}

func TestApplicationErrorPassesThroughWithoutRewind(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	sentinel := errors.New("app: not found")
	var addr mem.Addr
	err := s.Enter(1, func(c *DomainCtx) error {
		addr = c.MustAlloc(16)
		c.MustStore(addr, []byte("persist"))
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	d, _ := s.Domain(1)
	if d.Stats().Rewinds != 0 {
		t.Error("application error caused a rewind")
	}
	// Domain data persists across entries after an app error.
	err = s.Enter(1, func(c *DomainCtx) error {
		buf := make([]byte, 7)
		c.MustLoad(addr, buf)
		if string(buf) != "persist" {
			return fmt.Errorf("data lost: %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDomainViolationOnForeignAccess(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	d2 := mustDomain(t, s, 2)

	// Domain 2 allocates a secret.
	var secretAddr mem.Addr
	if err := s.Enter(2, func(c *DomainCtx) error {
		secretAddr = c.MustAlloc(32)
		c.MustStore(secretAddr, []byte("secret"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Domain 1 tries to read it: PKU violation, rewind.
	err := s.Enter(1, func(c *DomainCtx) error {
		buf := make([]byte, 6)
		c.MustLoad(secretAddr, buf)
		t.Error("unreachable: foreign load must trap")
		return nil
	})
	v, ok := IsViolation(err)
	if !ok {
		t.Fatalf("err = %v, want ViolationError", err)
	}
	if v.UDI != 1 || v.Mechanism != detect.MechDomainViolation {
		t.Errorf("violation = %+v", v)
	}
	// Domain 2's data is untouched.
	got, err := s.CopyFromDomain(secretAddr, 6)
	if err != nil || string(got) != "secret" {
		t.Errorf("victim data = %q, %v", got, err)
	}
	_ = d2
}

func TestRewindDiscardsHeapAndAllowsReuse(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	var addr mem.Addr
	err := s.Enter(1, func(c *DomainCtx) error {
		addr = c.MustAlloc(64)
		c.MustStore(addr, []byte("doomed data"))
		c.Violate(errors.New("detected corruption"))
		return nil
	})
	if _, ok := IsViolation(err); !ok {
		t.Fatalf("err = %v, want violation", err)
	}
	d, _ := s.Domain(1)
	if st := d.Heap().Stats(); st.LiveChunks != 0 {
		t.Errorf("heap not discarded: %+v", st)
	}
	// Zeroed on discard (default config).
	got, err := s.CopyFromDomain(addr, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatalf("discarded data not zeroed: %q", got)
		}
	}
	// The domain is immediately reusable — this is the availability story.
	if err := s.Enter(1, func(c *DomainCtx) error {
		p := c.MustAlloc(64)
		c.MustStore(p, []byte("fresh"))
		return nil
	}); err != nil {
		t.Fatalf("re-enter after rewind: %v", err)
	}
}

func TestGoPanicInDomainIsContained(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	err := s.Enter(1, func(c *DomainCtx) error {
		var p *int
		_ = *p // real nil dereference in component code
		return nil
	})
	v, ok := IsViolation(err)
	if !ok {
		t.Fatalf("err = %v, want violation", err)
	}
	if v.UDI != 1 {
		t.Errorf("UDI = %d", v.UDI)
	}
	// System still live.
	if err := s.Enter(1, func(*DomainCtx) error { return nil }); err != nil {
		t.Fatalf("enter after panic: %v", err)
	}
}

func TestHeapCorruptionDetectedOnExit(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	err := s.Enter(1, func(c *DomainCtx) error {
		p := c.MustAlloc(32)
		// Linear overflow within the domain: clobbers the redzone but is
		// only caught by the exit sweep.
		evil := make([]byte, 48)
		for i := range evil {
			evil[i] = 0x42
		}
		c.MustStore(p, evil)
		return nil
	})
	v, ok := IsViolation(err)
	if !ok {
		t.Fatalf("err = %v, want violation", err)
	}
	if v.Mechanism != detect.MechHeapCanary {
		t.Errorf("mechanism = %v, want heap-canary", v.Mechanism)
	}
}

func TestIntegrityCheckOnExitDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IntegrityCheckOnExit = false
	s := NewSystem(cfg)
	if _, err := s.InitDomain(1, DomainConfig{}); err != nil {
		t.Fatal(err)
	}
	err := s.Enter(1, func(c *DomainCtx) error {
		p := c.MustAlloc(32)
		c.MustStore(p, make([]byte, 48))
		return nil
	})
	if err != nil {
		t.Errorf("with sweep disabled, overflow goes unnoticed at exit: %v", err)
	}
}

func TestStackCanarySmashTriggersRewind(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	err := s.Enter(1, func(c *DomainCtx) error {
		return c.WithFrame(64, func(base mem.Addr) error {
			// Overflow locals into the frame canary.
			c.MustStore(base, make([]byte, 72))
			return nil
		})
	})
	v, ok := IsViolation(err)
	if !ok {
		t.Fatalf("err = %v, want violation", err)
	}
	if v.Mechanism != detect.MechStackCanary {
		t.Errorf("mechanism = %v, want stack-canary", v.Mechanism)
	}
}

func TestNestedDomainViolationContained(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	mustDomain(t, s, 2)
	var outerData mem.Addr
	var handled bool
	err := s.Enter(1, func(outer *DomainCtx) error {
		outerData = outer.MustAlloc(16)
		outer.MustStore(outerData, []byte("outer"))
		// Nested child faults; outer takes the alternate action.
		nerr := outer.Enter(2, func(inner *DomainCtx) error {
			buf := make([]byte, 5)
			inner.MustLoad(outerData, buf) // inner cannot read outer's heap
			return nil
		})
		if v, ok := IsViolation(nerr); !ok || v.UDI != 2 {
			return fmt.Errorf("inner violation not delivered: %v", nerr)
		}
		handled = true
		// Outer still works after the child rewound.
		buf := make([]byte, 5)
		outer.MustLoad(outerData, buf)
		if string(buf) != "outer" {
			return fmt.Errorf("outer data lost: %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if !handled {
		t.Error("alternate action did not run")
	}
	d1, _ := s.Domain(1)
	d2, _ := s.Domain(2)
	if d1.Stats().Violations != 0 || d2.Stats().Violations != 1 {
		t.Errorf("violations: d1=%d d2=%d", d1.Stats().Violations, d2.Stats().Violations)
	}
}

func TestOuterCtxUsedInsideNestedDomainFaults(t *testing.T) {
	// Per-thread PKRU semantics: using the outer domain's ctx while the
	// nested domain is active must access with the nested rights.
	s := newSys(t)
	mustDomain(t, s, 1)
	mustDomain(t, s, 2)
	err := s.Enter(1, func(outer *DomainCtx) error {
		p := outer.MustAlloc(8)
		return outer.Enter(2, func(*DomainCtx) error {
			// Confused deputy attempt: outer ctx, nested register state.
			if err := outer.Store64(p, 1); err == nil {
				return errors.New("outer access succeeded under nested PKRU")
			}
			return nil
		})
	})
	if err != nil {
		t.Fatalf("unexpected: %v", err)
	}
}

func TestDeinitActiveDomainRejected(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	err := s.Enter(1, func(c *DomainCtx) error {
		return s.DeinitDomain(1)
	})
	if !errors.Is(err, ErrDomainActive) {
		t.Errorf("err = %v, want ErrDomainActive", err)
	}
}

func TestRewindIsMicroseconds(t *testing.T) {
	// The headline claim: in-process rewind is µs-scale (3.5 µs in the
	// paper), vs minutes for a restart. Check our modeled rewind for a
	// default domain lands in the right order of magnitude: 1–100 µs.
	s := newSys(t)
	mustDomain(t, s, 1)
	err := s.Enter(1, func(c *DomainCtx) error {
		c.Violate(errors.New("fault"))
		return nil
	})
	if _, ok := IsViolation(err); !ok {
		t.Fatal(err)
	}
	cycles, err := s.RewindCycles(1)
	if err != nil {
		t.Fatal(err)
	}
	rt := vclock.CyclesToDuration(cycles, s.Clock().Model().CPUHz)
	if rt < time.Microsecond || rt > 100*time.Microsecond {
		t.Errorf("rewind time = %v, want µs-scale [1µs, 100µs]", rt)
	}
}

func TestFastDiscardAblation(t *testing.T) {
	slow := NewSystem(DefaultConfig())
	cfgFast := DefaultConfig()
	cfgFast.ZeroOnDiscard = false
	fast := NewSystem(cfgFast)

	run := func(s *System) uint64 {
		if _, err := s.InitDomain(1, DomainConfig{HeapPages: 256}); err != nil {
			t.Fatal(err)
		}
		err := s.Enter(1, func(c *DomainCtx) error {
			c.Violate(errors.New("fault"))
			return nil
		})
		if _, ok := IsViolation(err); !ok {
			t.Fatal(err)
		}
		cycles, _ := s.RewindCycles(1)
		return cycles
	}
	slowCycles, fastCycles := run(slow), run(fast)
	if fastCycles >= slowCycles {
		t.Errorf("fast discard (%d cycles) not cheaper than zeroing discard (%d cycles)", fastCycles, slowCycles)
	}
}

func TestCopyToFromDomain(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	var addr mem.Addr
	if err := s.Enter(1, func(c *DomainCtx) error {
		addr = c.MustAlloc(32)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CopyToDomain(addr, []byte("args in")); err != nil {
		t.Fatalf("CopyToDomain: %v", err)
	}
	got, err := s.CopyFromDomain(addr, 7)
	if err != nil || string(got) != "args in" {
		t.Errorf("CopyFromDomain = %q, %v", got, err)
	}
}

func TestViolationErrorFormatting(t *testing.T) {
	v := &ViolationError{UDI: 3, Mechanism: detect.MechStackCanary, Cause: errors.New("boom")}
	if v.Error() == "" {
		t.Error("empty error string")
	}
	if !errors.Is(fmt.Errorf("wrap: %w", v), v.Cause) {
		// Unwrap chain: ViolationError -> cause
		t.Skip("errors.Is through two levels checked elsewhere")
	}
	wrapped := fmt.Errorf("handler: %w", v)
	got, ok := IsViolation(wrapped)
	if !ok || got != v {
		t.Error("IsViolation failed on wrapped error")
	}
}

func TestCountersAccumulate(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	for i := 0; i < 5; i++ {
		_ = s.Enter(1, func(c *DomainCtx) error {
			buf := make([]byte, 1)
			c.MustLoad(0xdead0000, buf) // unmapped -> segfault detection
			return nil
		})
	}
	if got := s.Counters().Count(detect.MechSegfault); got != 5 {
		t.Errorf("segfault count = %d, want 5", got)
	}
}

func TestPKRUAcrossEnterExit(t *testing.T) {
	s := newSys(t)
	d := mustDomain(t, s, 1)
	if s.PKRU() != pku.PKRUAllowAll {
		t.Fatalf("root PKRU = %v", s.PKRU())
	}
	_ = s.Enter(1, func(c *DomainCtx) error {
		want := pku.OnlyKeys(pku.DefaultKey, d.Key())
		if s.PKRU() != want {
			t.Errorf("in-domain PKRU = %v, want %v", s.PKRU(), want)
		}
		return nil
	})
	if s.PKRU() != pku.PKRUAllowAll {
		t.Errorf("PKRU not restored: %v", s.PKRU())
	}
}

func TestEnterChargesCycles(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	before := s.Clock().Cycles()
	_ = s.Enter(1, func(*DomainCtx) error { return nil })
	if s.Clock().Cycles() <= before {
		t.Error("Enter charged no cycles")
	}
}

func TestWithFrameAppError(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	sentinel := errors.New("app failure")
	err := s.Enter(1, func(c *DomainCtx) error {
		return c.WithFrame(32, func(mem.Addr) error { return sentinel })
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestViolateNilCause(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	err := s.Enter(1, func(c *DomainCtx) error {
		c.Violate(nil)
		return nil
	})
	if _, ok := IsViolation(err); !ok {
		t.Errorf("err = %v, want violation", err)
	}
}

func TestStackRemainingVisible(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	_ = s.Enter(1, func(c *DomainCtx) error {
		before := c.StackRemaining()
		return c.WithFrame(128, func(mem.Addr) error {
			if c.StackRemaining() >= before {
				t.Error("frame did not consume stack")
			}
			return nil
		})
	})
}

func TestDomainCtxAccessorsAndErrorPaths(t *testing.T) {
	s := newSys(t)
	d := mustDomain(t, s, 3)
	err := s.Enter(3, func(c *DomainCtx) error {
		if c.UDI() != 3 || c.Key() != d.Key() {
			t.Errorf("ctx identity: udi=%d key=%v", c.UDI(), c.Key())
		}
		// Error-returning variants.
		p, err := c.Alloc(64)
		if err != nil {
			return err
		}
		if err := c.Store64(p, 0xfeed); err != nil {
			return err
		}
		v, err := c.Load64(p)
		if err != nil || v != 0xfeed {
			t.Errorf("Load64 = %#x, %v", v, err)
		}
		if v := c.MustLoad64(p); v != 0xfeed {
			t.Errorf("MustLoad64 = %#x", v)
		}
		c.MustStore64(p, 0xbeef)
		if err := c.CheckHeap(); err != nil {
			t.Errorf("CheckHeap: %v", err)
		}
		if err := c.Free(p); err != nil {
			return err
		}
		// Alloc failure path (error variant, no trap).
		if _, err := c.Alloc(-1); err == nil {
			t.Error("Alloc(-1) accepted")
		}
		// Load/Store error variants against unmapped memory.
		if err := c.Store(0xdead0000, []byte{1}); err == nil {
			t.Error("Store to unmapped accepted")
		}
		buf := make([]byte, 1)
		if err := c.Load(0xdead0000, buf); err == nil {
			t.Error("Load from unmapped accepted")
		}
		if err := c.Store64(0xdead0000, 1); err == nil {
			t.Error("Store64 to unmapped accepted")
		}
		if _, err := c.Load64(0xdead0000); err == nil {
			t.Error("Load64 from unmapped accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMustAllocTrapsOnExhaustion(t *testing.T) {
	s := newSys(t)
	if _, err := s.InitDomain(1, DomainConfig{HeapPages: 1, MaxHeapPages: 1, StackPages: 1}); err != nil {
		t.Fatal(err)
	}
	err := s.Enter(1, func(c *DomainCtx) error {
		for {
			c.MustAlloc(2048) // eventually traps on OOM
		}
	})
	if _, ok := IsViolation(err); !ok {
		t.Errorf("OOM trap = %v, want violation", err)
	}
}

func TestMustFreeTrapsOnWildPointer(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	err := s.Enter(1, func(c *DomainCtx) error {
		c.MustFree(0xdead0000)
		return nil
	})
	if _, ok := IsViolation(err); !ok {
		t.Errorf("wild MustFree = %v, want violation", err)
	}
}

func TestRewindCyclesAccessors(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	if _, err := s.RewindCycles(9); !errors.Is(err, ErrNoDomain) {
		t.Errorf("RewindCycles(unknown) = %v", err)
	}
	_ = s.Enter(1, func(c *DomainCtx) error { c.Violate(nil); return nil })
	d, _ := s.Domain(1)
	cycles, err := s.RewindCycles(1)
	if err != nil || cycles == 0 {
		t.Errorf("RewindCycles = %d, %v", cycles, err)
	}
	if d.Stats().RewindCycles() != cycles {
		t.Error("DomainStats.RewindCycles disagrees with System.RewindCycles")
	}
	if s.RootKey() == pku.DefaultKey {
		t.Error("root key should not be the default key")
	}
}

func TestViolationSignalErrorString(t *testing.T) {
	vs := &violationSignal{cause: errors.New("inner")}
	if vs.Error() != "inner" {
		t.Errorf("violationSignal.Error = %q", vs.Error())
	}
}

func TestDeepNesting(t *testing.T) {
	s := newSys(t)
	const depth = 6
	for i := 1; i <= depth; i++ {
		if _, err := s.InitDomain(UDI(i), DomainConfig{HeapPages: 2, StackPages: 2}); err != nil {
			t.Fatal(err)
		}
	}
	// Each level allocates, recurses, then verifies its own data after
	// the child returns.
	var enter func(c *DomainCtx, level int) error
	enter = func(c *DomainCtx, level int) error {
		p := c.MustAlloc(16)
		c.MustStore(p, []byte{byte(level)})
		if level < depth {
			if err := c.Enter(UDI(level+1), func(ic *DomainCtx) error {
				return enter(ic, level+1)
			}); err != nil {
				return err
			}
		}
		buf := make([]byte, 1)
		c.MustLoad(p, buf)
		if buf[0] != byte(level) {
			t.Errorf("level %d data clobbered", level)
		}
		return nil
	}
	if err := s.Enter(1, func(c *DomainCtx) error { return enter(c, 1) }); err != nil {
		t.Fatal(err)
	}
	// Violation at max depth rewinds only the innermost domain.
	err := s.Enter(1, func(c *DomainCtx) error {
		return c.Enter(2, func(c2 *DomainCtx) error {
			verr := c2.Enter(3, func(c3 *DomainCtx) error {
				c3.Violate(errors.New("deep fault"))
				return nil
			})
			if v, ok := IsViolation(verr); !ok || v.UDI != 3 {
				t.Errorf("deep violation = %v", verr)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= depth; i++ {
		d, _ := s.Domain(UDI(i))
		want := uint64(0)
		if i == 3 {
			want = 1
		}
		if d.Stats().Violations != want {
			t.Errorf("domain %d violations = %d, want %d", i, d.Stats().Violations, want)
		}
	}
}

func TestDiscardDomainResetsHeapInPlace(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)

	var first mem.Addr
	if err := s.Enter(1, func(c *DomainCtx) error {
		first = c.MustAlloc(64)
		c.MustStore(first, []byte("sensitive request state"))
		return nil
	}); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	pages := s.Mem().MappedPages()
	if err := s.DiscardDomain(1); err != nil {
		t.Fatalf("DiscardDomain: %v", err)
	}
	if got := s.Mem().MappedPages(); got != pages {
		t.Errorf("discard changed mapped pages: %d -> %d (mappings must survive)", pages, got)
	}
	// The next entry allocates from a pristine heap: the same address comes
	// back and carries no stale bytes.
	if err := s.Enter(1, func(c *DomainCtx) error {
		p := c.MustAlloc(64)
		if p != first {
			t.Errorf("post-discard alloc = %#x, want recycled %#x", p, first)
		}
		buf := make([]byte, 64)
		c.MustLoad(p, buf)
		for i, b := range buf {
			if b != 0 {
				t.Fatalf("stale byte %#x at offset %d after discard", b, i)
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("Enter after discard: %v", err)
	}
}

func TestDiscardDomainErrors(t *testing.T) {
	s := newSys(t)
	if err := s.DiscardDomain(7); !errors.Is(err, ErrNoDomain) {
		t.Errorf("discard unknown = %v, want ErrNoDomain", err)
	}
	mustDomain(t, s, 1)
	err := s.Enter(1, func(*DomainCtx) error {
		return s.DiscardDomain(1)
	})
	if !errors.Is(err, ErrDomainActive) {
		t.Errorf("discard active = %v, want ErrDomainActive", err)
	}
}
