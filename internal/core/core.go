package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/alloc"
	"repro/internal/detect"
	"repro/internal/mem"
	"repro/internal/pku"
	"repro/internal/stack"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// UDI is a user domain index, the handle applications use to refer to a
// domain (mirroring the sdrad_init(udi, ...) C API).
type UDI int

// RootUDI is the implicit root (trusted) domain of the application.
const RootUDI UDI = 0

// Sentinel errors.
var (
	// ErrDomainExists is returned when initializing an already-used UDI.
	ErrDomainExists = errors.New("sdrad: domain already initialized")
	// ErrNoDomain is returned for operations on an unknown UDI.
	ErrNoDomain = errors.New("sdrad: domain not initialized")
	// ErrDomainActive is returned when deinitializing a domain that is
	// currently executing.
	ErrDomainActive = errors.New("sdrad: domain is active")
	// ErrNotEntered is returned for operations that require an active
	// domain.
	ErrNotEntered = errors.New("sdrad: no active domain")
)

// ViolationError is returned by Enter when the entered domain suffered a
// memory-safety violation and was rewound and discarded. It is the Go
// analogue of sdrad_enter returning SDRAD_FAULT after the signal handler
// longjmps back.
type ViolationError struct {
	// UDI identifies the faulting domain.
	UDI UDI
	// Mechanism is the detector that fired.
	Mechanism detect.Mechanism
	// Cause is the underlying error (a *mem.Fault, canary error, or the
	// value of a panic in domain code).
	Cause error
	// RewindTime is the virtual time the rewind-and-discard took.
	RewindTime vclock.Clock
	// sys identifies the System whose domain was rewound: UDIs are
	// per-System, so RewoundBy needs both to attribute the rewind.
	sys *System
}

// Error implements error.
func (v *ViolationError) Error() string {
	return fmt.Sprintf("sdrad: domain %d violation (%s): %v", v.UDI, v.Mechanism, v.Cause)
}

// Unwrap returns the underlying cause.
func (v *ViolationError) Unwrap() error { return v.Cause }

// IsViolation reports whether err is (or wraps) a *ViolationError,
// returning it.
func IsViolation(err error) (*ViolationError, bool) {
	var v *ViolationError
	if errors.As(err, &v) {
		return v, true
	}
	return nil, false
}

// violationPanic carries a detected violation up to the domain boundary,
// emulating the hardware trap + signal delivery path. It is recovered in
// Enter and never escapes the package.
type violationPanic struct {
	cause error
}

// Config configures a System.
type Config struct {
	// Cost is the virtual cost model (DefaultCostModel if zero).
	Cost vclock.CostModel
	// IntegrityCheckOnExit runs a heap canary sweep when a domain exits
	// cleanly (default true; part of SDRaD's detection surface).
	IntegrityCheckOnExit bool
	// ZeroOnDiscard scrubs domain pages during rewind (default true;
	// turning it off is the "fast discard" ablation).
	ZeroOnDiscard bool
}

// DefaultConfig returns the default system configuration.
func DefaultConfig() Config {
	return Config{
		Cost:                 vclock.DefaultCostModel(),
		IntegrityCheckOnExit: true,
		ZeroOnDiscard:        true,
	}
}

// DomainConfig configures one domain.
type DomainConfig struct {
	// HeapPages is the initial heap size in pages (default 16).
	HeapPages int
	// MaxHeapPages bounds heap growth (default 1<<20).
	MaxHeapPages int
	// StackPages is the stack size in pages, excluding the guard page
	// (default 8).
	StackPages int
	// Secret seeds canaries (derived from the key if zero).
	Secret uint64
}

func (c *DomainConfig) fill() {
	if c.HeapPages <= 0 {
		c.HeapPages = 16
	}
	if c.MaxHeapPages <= 0 {
		c.MaxHeapPages = 1 << 20
	}
	if c.StackPages <= 0 {
		c.StackPages = 8
	}
}

// DomainStats tracks per-domain accounting.
type DomainStats struct {
	Entries    uint64
	CleanExits uint64
	Violations uint64
	Rewinds    uint64
	// Preemptions counts runs cancelled by an exhausted cycle budget
	// (rewound and discarded like violations, but not memory-safety
	// events: they do not count toward Violations or quarantine).
	Preemptions uint64
	rewindCycle uint64
}

// RewindCycles returns the cumulative virtual cycles spent rewinding.
func (st DomainStats) RewindCycles() uint64 { return st.rewindCycle }

// System is an SDRaD runtime instance bound to one simulated machine.
// Create with NewSystem. Not safe for concurrent use (single simulated
// hardware thread).
type System struct {
	cfg     Config
	clock   *vclock.Clock
	mem     *mem.Memory
	keys    pku.Allocator
	domains map[UDI]*Domain
	nextUDI UDI
	// active is the stack of currently-entered domains (innermost last).
	active   []*Domain
	rootKey  pku.Key
	counters detect.Counters
	tracer   trace.Recorder
	// pkru is the current simulated PKRU register value.
	pkru pku.PKRU
	// budgetLimit is the absolute virtual-cycle count at which the
	// current budgeted Enter preempts (0 = no budget in force). Nested
	// budgeted enters keep the tighter limit.
	budgetLimit uint64
}

// Domain is one isolated domain.
type Domain struct {
	udi   UDI
	key   pku.Key
	heap  *alloc.Heap
	stack *stack.Stack
	stats DomainStats
	sys   *System
	// pkru caches pkruFor(d) — the register value installed while d
	// executes. Recomputed whenever the domain's read grants change, so
	// Enter does not rebuild it per entry.
	pkru pku.PKRU
	// readKeys are foreign keys this domain may read (write-disabled),
	// installed by System.GrantRead.
	readKeys map[pku.Key]bool
	// maxViolations quarantines the domain once exceeded (0 = unlimited).
	maxViolations int
}

// NewSystem creates a fresh SDRaD runtime with its own simulated machine.
func NewSystem(cfg Config) *System {
	if cfg.Cost.CPUHz == 0 {
		def := DefaultConfig()
		if cfg.Cost == (vclock.CostModel{}) {
			cfg.Cost = def.Cost
		}
	}
	clk := vclock.New(cfg.Cost)
	s := &System{
		cfg:     cfg,
		clock:   clk,
		mem:     mem.New(clk),
		domains: make(map[UDI]*Domain),
		nextUDI: RootUDI + 1,
		pkru:    pku.PKRUAllowAll,
	}
	// The root domain's protected heap is tagged with a dedicated key
	// that no child domain's PKRU ever includes (child PKRUs carry key 0
	// for code/globals plus their own key). Adopted heaps and other
	// trusted state use this key, so a compromised domain cannot touch
	// them. Allocation cannot fail on a fresh allocator.
	rootKey, err := s.keys.Alloc()
	if err != nil {
		panic("sdrad: fresh key allocator exhausted: " + err.Error())
	}
	s.rootKey = rootKey
	return s
}

// RootKey returns the protection key tagging root-owned protected pages
// (adopted heaps). Root-side accessors (CopyFromDomain/CopyToDomain) run
// with full rights and can always touch it.
func (s *System) RootKey() pku.Key { return s.rootKey }

// Clock returns the system's virtual clock.
func (s *System) Clock() *vclock.Clock { return s.clock }

// Mem returns the simulated memory (root-privileged access).
func (s *System) Mem() *mem.Memory { return s.mem }

// Counters returns the detection counters.
func (s *System) Counters() *detect.Counters { return &s.counters }

// SetTracer installs a lifecycle-event recorder (nil disables tracing,
// the default).
func (s *System) SetTracer(r trace.Recorder) { s.tracer = r }

// emit records a lifecycle event if tracing is enabled.
func (s *System) emit(kind trace.Kind, udi UDI, detail string) {
	if s.tracer == nil {
		return
	}
	s.tracer.Record(trace.Event{At: s.clock.Now(), Kind: kind, UDI: int(udi), Detail: detail})
}

// PKRU returns the current simulated PKRU register value.
func (s *System) PKRU() pku.PKRU { return s.pkru }

// InitDomain initializes a domain at an explicit UDI (sdrad_init analog):
// allocates a protection key and maps the domain's heap and stack.
func (s *System) InitDomain(udi UDI, cfg DomainConfig) (*Domain, error) {
	if udi == RootUDI {
		return nil, fmt.Errorf("%w: UDI 0 is the root domain", ErrDomainExists)
	}
	if _, ok := s.domains[udi]; ok {
		return nil, fmt.Errorf("%w: UDI %d", ErrDomainExists, udi)
	}
	cfg.fill()
	key, err := s.keys.Alloc()
	if err != nil {
		return nil, fmt.Errorf("sdrad: init domain %d: %w", udi, err)
	}
	s.clock.Advance(s.cfg.Cost.PkeyAlloc)
	h, err := alloc.New(s.mem, key, alloc.Config{
		InitialPages: cfg.HeapPages,
		MaxPages:     cfg.MaxHeapPages,
		Secret:       cfg.Secret,
	})
	if err != nil {
		_ = s.keys.Free(key) //lint:errclass best-effort unwind; the init failure is the error callers must see
		return nil, fmt.Errorf("sdrad: init domain %d heap: %w", udi, err)
	}
	st, err := stack.New(s.mem, key, cfg.StackPages, cfg.Secret)
	if err != nil {
		_ = h.Release()      //lint:errclass best-effort unwind; the init failure is the error callers must see
		_ = s.keys.Free(key) //lint:errclass best-effort unwind; the init failure is the error callers must see
		return nil, fmt.Errorf("sdrad: init domain %d stack: %w", udi, err)
	}
	d := &Domain{udi: udi, key: key, heap: h, stack: st, sys: s}
	d.pkru = pkruFor(d)
	s.domains[udi] = d
	s.emit(trace.KindInit, udi, fmt.Sprintf("key=%v", key))
	if udi >= s.nextUDI {
		s.nextUDI = udi + 1
	}
	return d, nil
}

// CreateDomain initializes a domain at the next free UDI.
func (s *System) CreateDomain(cfg DomainConfig) (*Domain, error) {
	for {
		udi := s.nextUDI
		s.nextUDI++
		if _, ok := s.domains[udi]; !ok {
			return s.InitDomain(udi, cfg)
		}
	}
}

// Domain returns the domain at udi.
func (s *System) Domain(udi UDI) (*Domain, error) {
	d, ok := s.domains[udi]
	if !ok {
		return nil, fmt.Errorf("%w: UDI %d", ErrNoDomain, udi)
	}
	return d, nil
}

// Domains returns the number of initialized domains (excluding root).
func (s *System) Domains() int { return len(s.domains) }

// DeinitDomain tears down a domain (sdrad_deinit analog): releases its
// heap and stack pages and frees its protection key.
func (s *System) DeinitDomain(udi UDI) error {
	d, ok := s.domains[udi]
	if !ok {
		return fmt.Errorf("%w: UDI %d", ErrNoDomain, udi)
	}
	for _, a := range s.active {
		if a == d {
			return fmt.Errorf("%w: UDI %d", ErrDomainActive, udi)
		}
	}
	if err := d.heap.Release(); err != nil {
		return fmt.Errorf("sdrad: deinit %d: %w", udi, err)
	}
	if err := d.stack.Release(); err != nil {
		return fmt.Errorf("sdrad: deinit %d: %w", udi, err)
	}
	if err := s.keys.Free(d.key); err != nil {
		return fmt.Errorf("sdrad: deinit %d: %w", udi, err)
	}
	s.clock.Advance(s.cfg.Cost.PkeyFree)
	delete(s.domains, udi)
	s.emit(trace.KindDeinit, udi, "")
	return nil
}

// DiscardDomain resets domain udi's memory to a pristine state without
// tearing the domain down: the heap allocator is reset (and scrubbed when
// ZeroOnDiscard is on), while the domain's protection key, page mappings,
// and stack survive. This is the explicit-discard half of rewind-and-
// discard, used to recycle a warm domain between requests — far cheaper
// than DeinitDomain+InitDomain, which would also free and re-allocate the
// pkey and remap every page. The scrub's host cost is bounded by the
// pages the run actually dirtied (mem.Zero skips known-zero pages), so
// recycling a warm domain costs O(pages touched), not O(heap size) —
// virtual cycles are still charged for the full range.
func (s *System) DiscardDomain(udi UDI) error {
	d, ok := s.domains[udi]
	if !ok {
		return fmt.Errorf("%w: UDI %d", ErrNoDomain, udi)
	}
	for _, a := range s.active {
		if a == d {
			return fmt.Errorf("%w: UDI %d", ErrDomainActive, udi)
		}
	}
	var err error
	if s.cfg.ZeroOnDiscard {
		err = d.heap.Reset()
	} else {
		err = d.heap.ResetNoZero()
	}
	if err != nil {
		return fmt.Errorf("sdrad: discard domain %d: %w", udi, err)
	}
	s.emit(trace.KindDiscard, udi, "")
	return nil
}

// current returns the innermost active domain, or nil when executing in
// the root domain.
func (s *System) current() *Domain {
	if len(s.active) == 0 {
		return nil
	}
	return s.active[len(s.active)-1]
}

// pkruFor computes the PKRU value installed while d executes: full
// access to the domain's own key (plus key 0 for code/global access,
// which the simulated substrate does not use for any protected state),
// and read-only access to any keys shared via GrantRead.
func pkruFor(d *Domain) pku.PKRU {
	p := pku.OnlyKeys(pku.DefaultKey, d.key)
	//lint:detorder commutative bitmask union; iteration order cannot change the PKRU
	for k := range d.readKeys {
		p = p.WithAllowed(k).WithWriteDisabled(k)
	}
	return p
}

// Enter runs fn inside domain udi (sdrad_enter/sdrad_exit analog).
//
// On a clean return, the domain's heap passes an optional integrity sweep
// and its data persists for future entries. If a detector fires — a PKU
// domain violation, canary smash, guard-page hit, segfault, or a panic in
// fn — the domain is rewound: the stack is unwound to the entry point,
// the heap is discarded (reset and optionally zeroed), and Enter returns
// a *ViolationError. Application errors returned by fn pass through
// unchanged and do not rewind the domain.
func (s *System) Enter(udi UDI, fn func(*DomainCtx) error) error {
	return s.EnterWithBudget(udi, 0, fn)
}

// EnterWithBudget is Enter with a virtual-cycle budget: if the run
// consumes budget or more cycles, the next simulated-machine operation
// preempts it, the domain is rewound and discarded exactly as for a
// violation, and EnterWithBudget returns a *BudgetError. budget == 0
// means no budget. A nested budgeted enter inherits the outer limit when
// that is tighter.
func (s *System) EnterWithBudget(udi UDI, budget uint64, fn func(*DomainCtx) error) error {
	d, ok := s.domains[udi]
	if !ok {
		return fmt.Errorf("%w: UDI %d", ErrNoDomain, udi)
	}
	if d.quarantined() {
		return fmt.Errorf("%w: UDI %d after %d violations", ErrQuarantined, udi, d.stats.Violations)
	}

	entry := s.clock.Cycles()
	prevLimit := s.budgetLimit
	if budget > 0 {
		limit := entry + budget
		if limit < entry {
			// Saturate: a budget near 2^64 means "effectively unlimited",
			// not "wrapped below the clock and preempt immediately".
			limit = math.MaxUint64
		}
		if prevLimit == 0 || limit < prevLimit {
			s.budgetLimit = limit
		}
	}

	// Context snapshot (setjmp analog) + PKRU switch into the domain.
	s.clock.Advance(s.cfg.Cost.SnapshotCtx + s.cfg.Cost.WRPKRU)
	snap := d.stack.Snapshot()
	prevPKRU := s.pkru
	s.pkru = d.pkru
	s.active = append(s.active, d)
	d.stats.Entries++
	s.emit(trace.KindEnter, udi, "")

	ctx := &DomainCtx{sys: s, d: d}
	err := s.runGuarded(ctx, fn)

	// Leave the domain: restore the caller's PKRU and budget.
	s.active = s.active[:len(s.active)-1]
	s.pkru = prevPKRU
	limit := s.budgetLimit
	s.budgetLimit = prevLimit
	s.clock.Advance(s.cfg.Cost.WRPKRU)

	if err == nil && s.cfg.IntegrityCheckOnExit {
		if ierr := d.heap.CheckIntegrity(); ierr != nil {
			err = &violationSignal{cause: ierr}
		}
	}

	if _, ok := err.(*budgetSignal); ok {
		// Used is captured before the rewind advances the clock, so it is
		// a deterministic function of the work the run performed.
		used := s.clock.Cycles() - entry
		if rerr := s.discardAndRewind(d, snap); rerr != nil {
			return rerr
		}
		d.stats.Preemptions++
		s.emit(trace.KindRewind, d.udi, fmt.Sprintf("budget=%d used=%d", limit-entry, used))
		return &BudgetError{UDI: d.udi, Budget: limit - entry, Used: used, sys: s}
	}
	if vs, ok := err.(*violationSignal); ok {
		return s.rewind(d, snap, vs.cause)
	}
	if err == nil {
		d.stats.CleanExits++
		s.emit(trace.KindExit, udi, "clean")
	}
	return err
}

// violationSignal is an internal marker distinguishing "a detector fired"
// from application errors on the non-panic path.
type violationSignal struct{ cause error }

func (v *violationSignal) Error() string { return v.cause.Error() }

// runGuarded executes fn, converting violation panics (and any other
// panic from domain code) into violationSignal errors.
func (s *System) runGuarded(ctx *DomainCtx, fn func(*DomainCtx) error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if vp, ok := r.(violationPanic); ok {
			err = &violationSignal{cause: vp.cause}
			return
		}
		if _, ok := r.(budgetPanic); ok {
			err = &budgetSignal{}
			return
		}
		// A Go runtime panic in domain code models an in-domain crash
		// (e.g. a null dereference compiled into the component).
		err = &violationSignal{cause: fmt.Errorf("domain panic: %v", r)}
	}()
	err = fn(ctx)
	if err != nil && detect.IsViolation(err) {
		err = &violationSignal{cause: err}
	}
	return err
}

// discardAndRewind performs the mechanical half of secure rewind and
// discard — signal delivery, stack unwind to the enter point, heap
// discard — shared by the violation and budget-preemption paths. It
// accounts the recovery in Rewinds/rewind cycles; the caller classifies
// the event.
func (s *System) discardAndRewind(d *Domain, snap stack.Snapshot) error {
	start := s.clock.Cycles()

	// Signal delivery + longjmp back to the enter point.
	s.clock.Advance(s.cfg.Cost.SignalDeliver + s.cfg.Cost.RestoreCtx + s.cfg.Cost.WRPKRU)
	if err := d.stack.Rewind(snap); err != nil {
		// Cannot happen for snapshots taken by Enter; fail loudly.
		return fmt.Errorf("sdrad: rewind of domain %d failed: %w", d.udi, err)
	}
	// Discard: reset the heap allocator. Zeroing is configurable (the
	// fast-discard ablation skips the scrub).
	if s.cfg.ZeroOnDiscard {
		if err := d.heap.Reset(); err != nil {
			return fmt.Errorf("sdrad: discard of domain %d failed: %w", d.udi, err)
		}
	} else {
		if err := d.heap.ResetNoZero(); err != nil {
			return fmt.Errorf("sdrad: discard of domain %d failed: %w", d.udi, err)
		}
	}
	d.stats.Rewinds++
	d.stats.rewindCycle += s.clock.Cycles() - start
	return nil
}

// rewind performs secure rewind and discard of domain d and returns the
// resulting *ViolationError.
func (s *System) rewind(d *Domain, snap stack.Snapshot, cause error) error {
	start := s.clock.Cycles()
	if err := s.discardAndRewind(d, snap); err != nil {
		return err
	}

	mech := detect.Classify(cause)
	if mech == detect.MechNone {
		// An in-domain panic or explicit Violate without a substrate
		// fault type: account it as a crash-class detection so every
		// rewind is counted.
		mech = detect.MechSegfault
	}
	s.counters.Add(mech)
	d.stats.Violations++
	s.emit(trace.KindViolation, d.udi, mech.String())
	s.emit(trace.KindRewind, d.udi, fmt.Sprintf("cycles=%d", s.clock.Cycles()-start))

	return &ViolationError{UDI: d.udi, Mechanism: mech, Cause: cause, sys: s}
}

// RewindCycles returns the cumulative virtual cycles domain udi has
// spent in rewind-and-discard.
func (s *System) RewindCycles(udi UDI) (uint64, error) {
	d, ok := s.domains[udi]
	if !ok {
		return 0, fmt.Errorf("%w: UDI %d", ErrNoDomain, udi)
	}
	return d.stats.rewindCycle, nil
}

// Stats returns a copy of the domain's statistics.
func (d *Domain) Stats() DomainStats { return d.stats }

// UDI returns the domain's index.
func (d *Domain) UDI() UDI { return d.udi }

// Key returns the domain's protection key.
func (d *Domain) Key() pku.Key { return d.key }

// Heap exposes the domain heap for root-privileged inspection.
func (d *Domain) Heap() *alloc.Heap { return d.heap }

// CopyFromDomain reads n bytes at addr with root privileges — how the
// trusted runtime extracts results from a domain after a clean exit.
func (s *System) CopyFromDomain(addr mem.Addr, n int) ([]byte, error) {
	buf := make([]byte, n)
	if err := s.mem.LoadBytes(pku.PKRUAllowAll, addr, buf); err != nil {
		return nil, fmt.Errorf("sdrad: copy from domain: %w", err)
	}
	return buf, nil
}

// CopyToDomain writes data at addr with root privileges — how the trusted
// runtime passes arguments into a domain.
func (s *System) CopyToDomain(addr mem.Addr, data []byte) error {
	if err := s.mem.StoreBytes(pku.PKRUAllowAll, addr, data); err != nil {
		return fmt.Errorf("sdrad: copy to domain: %w", err)
	}
	return nil
}
