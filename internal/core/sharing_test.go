package core

import (
	"errors"
	"testing"

	"repro/internal/detect"
	"repro/internal/mem"
	"repro/internal/pku"
)

func TestGrantReadAllowsReadsDeniesWrites(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1) // viewer
	mustDomain(t, s, 2) // owner

	var shared mem.Addr
	if err := s.Enter(2, func(c *DomainCtx) error {
		shared = c.MustAlloc(32)
		c.MustStore(shared, []byte("shared config"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Before the grant: read faults.
	err := s.Enter(1, func(c *DomainCtx) error {
		buf := make([]byte, 13)
		c.MustLoad(shared, buf)
		return nil
	})
	if v, ok := IsViolation(err); !ok || v.Mechanism != detect.MechDomainViolation {
		t.Fatalf("pre-grant read = %v, want domain violation", err)
	}

	if err := s.GrantRead(1, 2); err != nil {
		t.Fatal(err)
	}

	// After the grant: reads succeed, writes still fault.
	err = s.Enter(1, func(c *DomainCtx) error {
		buf := make([]byte, 13)
		c.MustLoad(shared, buf)
		if string(buf) != "shared config" {
			t.Errorf("read %q", buf)
		}
		// Write attempt must trap.
		c.MustStore(shared, []byte("tampered"))
		return nil
	})
	v, ok := IsViolation(err)
	if !ok || v.Mechanism != detect.MechDomainViolation {
		t.Fatalf("write with read-grant = %v, want domain violation", err)
	}
	// Owner data unchanged.
	got, _ := s.CopyFromDomain(shared, 13)
	if string(got) != "shared config" {
		t.Errorf("owner data = %q", got)
	}
}

func TestRevokeRead(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	mustDomain(t, s, 2)
	var shared mem.Addr
	_ = s.Enter(2, func(c *DomainCtx) error {
		shared = c.MustAlloc(8)
		return nil
	})
	if err := s.GrantRead(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.RevokeRead(1, 2); err != nil {
		t.Fatal(err)
	}
	err := s.Enter(1, func(c *DomainCtx) error {
		buf := make([]byte, 8)
		c.MustLoad(shared, buf)
		return nil
	})
	if _, ok := IsViolation(err); !ok {
		t.Errorf("post-revoke read = %v, want violation", err)
	}
}

func TestGrantReadValidation(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	if err := s.GrantRead(1, 9); !errors.Is(err, ErrNoDomain) {
		t.Errorf("unknown owner = %v", err)
	}
	if err := s.GrantRead(9, 1); !errors.Is(err, ErrNoDomain) {
		t.Errorf("unknown viewer = %v", err)
	}
	if err := s.GrantRead(1, 1); err == nil {
		t.Error("self-grant accepted")
	}
	if err := s.RevokeRead(1, 9); !errors.Is(err, ErrNoDomain) {
		t.Errorf("revoke unknown owner = %v", err)
	}
	if err := s.RevokeRead(9, 1); !errors.Is(err, ErrNoDomain) {
		t.Errorf("revoke unknown viewer = %v", err)
	}
}

func TestGrantTakesEffectWhileActive(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	mustDomain(t, s, 2)
	var shared mem.Addr
	_ = s.Enter(2, func(c *DomainCtx) error {
		shared = c.MustAlloc(8)
		c.MustStore(shared, []byte("now-open"))
		return nil
	})
	// Grant while domain 1 is executing: the register refresh must apply
	// immediately (the runtime performs the WRPKRU).
	err := s.Enter(1, func(c *DomainCtx) error {
		if err := s.GrantRead(1, 2); err != nil {
			return err
		}
		buf := make([]byte, 8)
		c.MustLoad(shared, buf)
		if string(buf) != "now-open" {
			t.Errorf("read %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Enter: %v", err)
	}
}

func TestQuarantineAfterBudget(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	if err := s.SetViolationBudget(1, 3); err != nil {
		t.Fatal(err)
	}
	crash := func(c *DomainCtx) error {
		c.Violate(errors.New("bug"))
		return nil
	}
	for i := 0; i < 3; i++ {
		if _, ok := IsViolation(s.Enter(1, crash)); !ok {
			t.Fatalf("violation %d not delivered", i)
		}
	}
	q, err := s.Quarantined(1)
	if err != nil || !q {
		t.Fatalf("Quarantined = %v, %v", q, err)
	}
	if err := s.Enter(1, crash); !errors.Is(err, ErrQuarantined) {
		t.Errorf("enter after budget = %v, want ErrQuarantined", err)
	}
	// Unlimited budget clears the quarantine.
	if err := s.SetViolationBudget(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Enter(1, func(*DomainCtx) error { return nil }); err != nil {
		t.Errorf("enter after budget reset: %v", err)
	}
}

func TestQuarantineValidation(t *testing.T) {
	s := newSys(t)
	if err := s.SetViolationBudget(9, 1); !errors.Is(err, ErrNoDomain) {
		t.Errorf("budget on unknown = %v", err)
	}
	if _, err := s.Quarantined(9); !errors.Is(err, ErrNoDomain) {
		t.Errorf("Quarantined unknown = %v", err)
	}
}

func TestAdoptHeapZeroCopy(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	var result mem.Addr
	if err := s.Enter(1, func(c *DomainCtx) error {
		result = c.MustAlloc(64)
		c.MustStore(result, []byte("computed result"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	h, err := s.AdoptHeap(1)
	if err != nil {
		t.Fatal(err)
	}
	// Domain is gone, its key is reusable.
	if _, err := s.Domain(1); !errors.Is(err, ErrNoDomain) {
		t.Error("domain survived adoption")
	}
	// The data is readable at the same address with root rights —
	// nothing was copied.
	buf, err := s.CopyFromDomain(result, 15)
	if err != nil {
		t.Fatalf("read adopted data: %v", err)
	}
	if string(buf) != "computed result" {
		t.Errorf("adopted data = %q", buf)
	}
	// Adopted pages carry the root-protected key: the default-key PKRU of
	// domain code cannot touch them.
	if _, lerr := s.Mem().Load8(pku.OnlyKeys(pku.DefaultKey), result); lerr == nil {
		t.Error("default-key rights could read root-protected page")
	}
	// The adopted heap remains a working allocator.
	if _, err := h.Alloc(32); err != nil {
		t.Errorf("alloc on adopted heap: %v", err)
	}
	if err := h.Free(result); err != nil {
		t.Errorf("free adopted allocation: %v", err)
	}
	// The freed key supports a new domain.
	if _, err := s.InitDomain(5, DomainConfig{HeapPages: 1, StackPages: 1}); err != nil {
		t.Errorf("new domain after adoption: %v", err)
	}
}

func TestAdoptHeapValidation(t *testing.T) {
	s := newSys(t)
	if _, err := s.AdoptHeap(9); !errors.Is(err, ErrNoDomain) {
		t.Errorf("adopt unknown = %v", err)
	}
	mustDomain(t, s, 1)
	err := s.Enter(1, func(c *DomainCtx) error {
		_, aerr := s.AdoptHeap(1)
		return aerr
	})
	if !errors.Is(err, ErrDomainActive) {
		t.Errorf("adopt active = %v, want ErrDomainActive", err)
	}
}

func TestReadGrantSurvivesRewind(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	mustDomain(t, s, 2)
	var shared mem.Addr
	_ = s.Enter(2, func(c *DomainCtx) error {
		shared = c.MustAlloc(8)
		c.MustStore(shared, []byte("persists"))
		return nil
	})
	if err := s.GrantRead(1, 2); err != nil {
		t.Fatal(err)
	}
	// Violate and rewind domain 1.
	_ = s.Enter(1, func(c *DomainCtx) error {
		c.Violate(errors.New("bug"))
		return nil
	})
	// The grant is runtime configuration, not domain state: it survives.
	err := s.Enter(1, func(c *DomainCtx) error {
		buf := make([]byte, 8)
		c.MustLoad(shared, buf)
		return nil
	})
	if err != nil {
		t.Errorf("read after rewind: %v", err)
	}
}

// TestAdoptHeapMovesNoBytes proves the zero-copy property: adopting a
// heap full of data performs page-table key updates only — the memory
// traffic counters must not move.
func TestAdoptHeapMovesNoBytes(t *testing.T) {
	s := newSys(t)
	mustDomain(t, s, 1)
	// Fill the domain heap with data.
	if err := s.Enter(1, func(c *DomainCtx) error {
		for i := 0; i < 32; i++ {
			p := c.MustAlloc(1024)
			c.MustStore(p, make([]byte, 1024))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	before := s.Mem().Stats()
	if _, err := s.AdoptHeap(1); err != nil {
		t.Fatal(err)
	}
	after := s.Mem().Stats()
	if after.BytesRead != before.BytesRead || after.BytesWritten != before.BytesWritten {
		t.Errorf("adoption moved bytes: read %d->%d written %d->%d",
			before.BytesRead, after.BytesRead, before.BytesWritten, after.BytesWritten)
	}
	if after.Loads != before.Loads || after.Stores != before.Stores {
		t.Errorf("adoption performed data accesses: loads %d->%d stores %d->%d",
			before.Loads, after.Loads, before.Stores, after.Stores)
	}
}
