package core

import (
	"testing"

	"repro/internal/mem"
)

// TestDiscardScrubIsByteIdenticalToFullZeroing: the system-level
// differential test for dirty-page-bounded discard — after a workload
// dirties part of the heap and the domain is discarded, every byte of
// every heap page reads zero, exactly the state the seed's full scrub
// produced.
func TestDiscardScrubIsByteIdenticalToFullZeroing(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	d, err := sys.CreateDomain(DomainConfig{HeapPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a few pages with recognizable bytes, leave most untouched.
	err = sys.Enter(d.UDI(), func(c *DomainCtx) error {
		for i := 0; i < 5; i++ {
			p := c.MustAlloc(3000)
			buf := make([]byte, 3000)
			for j := range buf {
				buf[j] = 0xc7
			}
			c.MustStore(p, buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Mem().DirtyPages() == 0 {
		t.Fatal("workload dirtied no pages")
	}
	if err := sys.DiscardDomain(d.UDI()); err != nil {
		t.Fatal(err)
	}
	for _, r := range d.Heap().Regions() {
		buf := make([]byte, mem.PageSize)
		for pg := 0; pg < r.NPages; pg++ {
			if err := sys.Mem().PeekBytes(r.Base+mem.Addr(pg)*mem.PageSize, buf); err != nil {
				t.Fatal(err)
			}
			for off, b := range buf {
				if b != 0 {
					t.Fatalf("heap page %d byte %d nonzero (%#x) after discard", pg, off, b)
				}
			}
		}
	}
}

// TestDiscardCyclesIndependentOfDirtiness: the virtual cost of a discard
// is a function of heap geometry, not of how many pages the run dirtied —
// the host-side dirty-bounded scrub must be invisible to virtual time.
func TestDiscardCyclesIndependentOfDirtiness(t *testing.T) {
	run := func(dirtyPages int) uint64 {
		sys := NewSystem(DefaultConfig())
		d, err := sys.CreateDomain(DomainConfig{HeapPages: 32})
		if err != nil {
			t.Fatal(err)
		}
		if dirtyPages > 0 {
			err = sys.Enter(d.UDI(), func(c *DomainCtx) error {
				p := c.MustAlloc(dirtyPages * mem.PageSize)
				c.MustStore(p, make([]byte, dirtyPages*mem.PageSize))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		before := sys.Clock().Cycles()
		if err := sys.DiscardDomain(d.UDI()); err != nil {
			t.Fatal(err)
		}
		return sys.Clock().Cycles() - before
	}
	clean := run(0)
	dirty := run(16)
	if clean != dirty {
		t.Errorf("discard cycles depend on dirtiness: clean=%d dirty=%d", clean, dirty)
	}
	if clean == 0 {
		t.Error("discard charged no cycles")
	}
}

// TestAdoptHeapInvalidatesStaleTranslations: heap adoption re-tags the
// domain's pages to the root key while the domain's old PKRU value has
// warm TLB entries for them. A new domain reusing that protection key
// must not be able to reach the adopted pages through a stale cached
// translation.
func TestAdoptHeapInvalidatesStaleTranslations(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	d, err := sys.CreateDomain(DomainConfig{HeapPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	oldKey := d.Key()
	var addr mem.Addr
	// Warm the TLB for (heap pages, domain PKRU).
	err = sys.Enter(d.UDI(), func(c *DomainCtx) error {
		addr = c.MustAlloc(256)
		c.MustStore(addr, make([]byte, 256))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	adopted, err := sys.AdoptHeap(d.UDI())
	if err != nil {
		t.Fatal(err)
	}
	if adopted.Key() != sys.RootKey() {
		t.Fatalf("adopted heap key = %v, want root key %v", adopted.Key(), sys.RootKey())
	}
	// A fresh domain gets the freed key back — its PKRU equals the old
	// domain's, so a stale TLB entry would wrongly allow the access.
	d2, err := sys.CreateDomain(DomainConfig{HeapPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Key() != oldKey {
		t.Skipf("key allocator did not reuse %v (got %v)", oldKey, d2.Key())
	}
	err = sys.Enter(d2.UDI(), func(c *DomainCtx) error {
		return c.Store64(addr, 0x41)
	})
	v, ok := IsViolation(err)
	if !ok {
		t.Fatalf("write to adopted page = %v, want ViolationError", err)
	}
	f, ok := mem.IsFault(v.Cause)
	if !ok || f.Kind != mem.FaultPkey {
		t.Errorf("cause = %v, want FaultPkey on root-tagged page", v.Cause)
	}
}

// TestGrantRevokeReadRefreshesCachedPKRU: the per-domain cached register
// value must track read grants, including for a domain that is not
// currently active.
func TestGrantRevokeReadRefreshesCachedPKRU(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	owner, err := sys.CreateDomain(DomainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	viewer, err := sys.CreateDomain(DomainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var shared mem.Addr
	if err := sys.Enter(owner.UDI(), func(c *DomainCtx) error {
		shared = c.MustAlloc(64)
		c.MustStore64(shared, 0x5eed)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Without a grant the viewer faults.
	err = sys.Enter(viewer.UDI(), func(c *DomainCtx) error {
		_, lerr := c.Load64(shared)
		if lerr == nil {
			t.Error("read without grant succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Grant while the viewer is inactive: the cached PKRU must pick it up
	// on the next entry.
	if err := sys.GrantRead(viewer.UDI(), owner.UDI()); err != nil {
		t.Fatal(err)
	}
	if !viewer.pkru.CanRead(owner.Key()) || viewer.pkru.CanWrite(owner.Key()) {
		t.Fatalf("cached PKRU %v does not reflect read grant", viewer.pkru)
	}
	err = sys.Enter(viewer.UDI(), func(c *DomainCtx) error {
		v, lerr := c.Load64(shared)
		if lerr != nil || v != 0x5eed {
			t.Errorf("granted read = %#x, %v", v, lerr)
		}
		if serr := c.Store64(shared, 1); serr == nil {
			t.Error("write through read-only grant succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RevokeRead(viewer.UDI(), owner.UDI()); err != nil {
		t.Fatal(err)
	}
	if viewer.pkru.CanRead(owner.Key()) {
		t.Fatalf("cached PKRU %v still allows revoked key", viewer.pkru)
	}
}

// TestWorkerRecycleDirtyBounded: the pool-style recycle loop —
// enter/work/discard — keeps the machine's dirty-page count bounded by
// the working set, not by cumulative traffic.
func TestWorkerRecycleDirtyBounded(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	d, err := sys.CreateDomain(DomainConfig{HeapPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		err := sys.Enter(d.UDI(), func(c *DomainCtx) error {
			p := c.MustAlloc(1024)
			c.MustStore(p, make([]byte, 1024))
			c.MustFree(p)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.DiscardDomain(d.UDI()); err != nil {
			t.Fatal(err)
		}
	}
	// After the final discard only non-heap pages (the domain stack) may
	// be dirty.
	stackPages := 8 + 1 // DomainConfig default StackPages + guard
	if got := sys.Mem().DirtyPages(); got > stackPages {
		t.Errorf("DirtyPages = %d after recycle loop, want <= %d (stack only)", got, stackPages)
	}
}
