package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestBytesFills(t *testing.T) {
	r := NewRNG(7)
	buf := make([]byte, 33)
	r.Bytes(buf)
	allZero := true
	for _, b := range buf {
		if b != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("Bytes produced all zeros")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(9)
	z, err := NewZipf(rng, 1000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 1000)
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should be far more popular than rank 500.
	if counts[0] < 10*counts[500]+1 {
		t.Errorf("zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
	// Head concentration: top-10 keys should carry >20% of traffic.
	head := 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	if float64(head)/n < 0.2 {
		t.Errorf("top-10 share = %.3f, want > 0.2", float64(head)/n)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	rng := NewRNG(11)
	z, err := NewZipf(rng, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 0; i < 100_000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("uniform zipf rank %d count = %d, want ≈1000", i, c)
		}
	}
}

func TestZipfErrors(t *testing.T) {
	rng := NewRNG(1)
	if _, err := NewZipf(rng, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(rng, 10, -1); err == nil {
		t.Error("negative skew accepted")
	}
}

// Property: zipf ranks are always in [0, n).
func TestZipfRangeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		z, err := NewZipf(NewRNG(seed), n, 0.99)
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			if r := z.Next(); r < 0 || r >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKVGeneratorMix(t *testing.T) {
	g, err := NewKV(KVConfig{Seed: 5, GetFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	gets, sets := 0, 0
	for i := 0; i < 10_000; i++ {
		req := g.Next()
		switch req.Op {
		case OpGet:
			gets++
			if req.Value != nil {
				t.Fatal("GET with value")
			}
		case OpSet:
			sets++
			if len(req.Value) != 128 {
				t.Fatalf("SET value size = %d", len(req.Value))
			}
		}
		if req.Key == "" || req.Malicious {
			t.Fatal("bad request")
		}
	}
	frac := float64(gets) / float64(gets+sets)
	if frac < 0.87 || frac > 0.93 {
		t.Errorf("GET fraction = %.3f, want ≈0.9", frac)
	}
}

func TestKVGeneratorDeterministic(t *testing.T) {
	g1, _ := NewKV(KVConfig{Seed: 77})
	g2, _ := NewKV(KVConfig{Seed: 77})
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Op != b.Op || a.Key != b.Key {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestMaliciousEvery(t *testing.T) {
	g, _ := NewKV(KVConfig{Seed: 3})
	m := &MaliciousEvery{G: g, N: 10}
	mal := 0
	for i := 1; i <= 100; i++ {
		req := m.Next()
		if req.Malicious {
			mal++
			if req.Op != OpSet || len(req.Value) == 0 {
				t.Error("malicious request malformed")
			}
			if i%10 != 0 {
				t.Errorf("malicious at position %d", i)
			}
		}
	}
	if mal != 10 {
		t.Errorf("malicious count = %d, want 10", mal)
	}
	// N<=0 disables attacks.
	benign := &MaliciousEvery{G: g, N: 0}
	for i := 0; i < 50; i++ {
		if benign.Next().Malicious {
			t.Fatal("attack with N=0")
		}
	}
}

func TestKeyFormatting(t *testing.T) {
	if Key(7) != "key-00000007" {
		t.Errorf("Key(7) = %q", Key(7))
	}
}

func TestOpString(t *testing.T) {
	if OpGet.String() != "GET" || OpSet.String() != "SET" || OpDelete.String() != "DELETE" {
		t.Error("unexpected op strings")
	}
	if Op(9).String() == "" {
		t.Error("unknown op should render")
	}
}

func TestHTTPGeneratorDeterministic(t *testing.T) {
	a, err := NewHTTP(HTTPConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHTTP(HTTPConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		ra, rb := a.Next(), b.Next()
		if ra.Method != rb.Method || ra.Path != rb.Path || string(ra.Raw) != string(rb.Raw) {
			t.Fatalf("request %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestHTTPGeneratorShape(t *testing.T) {
	g, err := NewHTTP(HTTPConfig{Seed: 1, Paths: 8, ExtraHeaders: 3})
	if err != nil {
		t.Fatal(err)
	}
	heads := 0
	for i := 0; i < 1000; i++ {
		r := g.Next()
		if r.Method == "HEAD" {
			heads++
		} else if r.Method != "GET" {
			t.Fatalf("unexpected method %q", r.Method)
		}
		raw := string(r.Raw)
		if !strings.HasPrefix(raw, r.Method+" "+r.Path+" HTTP/1.1\r\n") {
			t.Fatalf("bad request line in %q", raw)
		}
		if !strings.HasSuffix(raw, "\r\n\r\n") {
			t.Fatalf("missing head terminator in %q", raw)
		}
		if n := strings.Count(raw, "x-filler-"); n != 3 {
			t.Fatalf("want 3 filler headers, got %d in %q", n, raw)
		}
	}
	// ~5% default HEAD fraction: loose bounds, deterministic stream.
	if heads == 0 || heads > 200 {
		t.Errorf("HEAD count %d out of expected range", heads)
	}
}
