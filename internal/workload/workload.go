// Package workload provides deterministic workload generation for the
// experiment harness: a seedable PRNG, Zipf-distributed key selection
// (cache workloads are famously skewed), request mixes, and
// malicious-client schedules for the containment experiment (E4).
package workload

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// RNG is a small, fast, deterministic PRNG (splitmix64). The zero value
// is usable but every zero-seeded RNG yields the same stream; use New
// with distinct seeds for independent streams. Not safe for concurrent
// use.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bytes fills dst with random bytes.
func (r *RNG) Bytes(dst []byte) {
	for i := range dst {
		if i%8 == 0 {
			v := r.Uint64()
			for j := 0; j < 8 && i+j < len(dst); j++ {
				dst[i+j] = byte(v >> (8 * j))
			}
		}
	}
}

// Zipf generates Zipf-distributed ranks in [0, n) with exponent s,
// using the classic inverse-CDF-over-precomputed-harmonics method.
// Deterministic given the RNG. Create with NewZipf.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with skew s (s=0 uniform,
// s≈0.99 is the YCSB default).
func NewZipf(rng *RNG, n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf needs n > 0, got %d", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("workload: zipf needs s >= 0, got %v", s)
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}, nil
}

// Next returns the next rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Op is a key-value operation type.
type Op uint8

// Operations.
const (
	OpGet Op = iota
	OpSet
	OpDelete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Request is one generated key-value request.
type Request struct {
	Op    Op
	Key   string
	Value []byte
	// TTL is the item lifetime for SETs (0 = no expiry), in virtual time.
	TTL time.Duration
	// Flags is the opaque client flags word stored with SETs (memcached
	// semantics: returned verbatim on GET).
	Flags uint32
	// Malicious marks requests crafted to trigger a memory-safety bug.
	Malicious bool
}

// KVConfig configures a key-value request generator.
type KVConfig struct {
	// Keys is the key-space size (default 10_000).
	Keys int
	// ZipfS is the key-popularity skew (default 0.99).
	ZipfS float64
	// GetFraction is the fraction of GETs (default 0.9, the memcached
	// read-heavy mix).
	GetFraction float64
	// ValueSize is the SET payload size in bytes (default 128).
	ValueSize int
	// Seed seeds the generator.
	Seed uint64
}

func (c *KVConfig) fill() {
	if c.Keys <= 0 {
		c.Keys = 10_000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 0.99
	}
	if c.GetFraction == 0 {
		c.GetFraction = 0.9
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 128
	}
}

// KVGenerator produces a deterministic stream of key-value requests.
type KVGenerator struct {
	cfg  KVConfig
	rng  *RNG
	zipf *Zipf
}

// NewKV builds a request generator.
func NewKV(cfg KVConfig) (*KVGenerator, error) {
	cfg.fill()
	rng := NewRNG(cfg.Seed)
	z, err := NewZipf(rng, cfg.Keys, cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	return &KVGenerator{cfg: cfg, rng: rng, zipf: z}, nil
}

// Key returns the key string for rank i.
func Key(i int) string { return fmt.Sprintf("key-%08d", i) }

// RenderKVText renders the request in the memcached text wire format —
// the one byte-level rendering shared by the kvstore server, the attack
// generator's corpora, and the campaign engine, so they all exercise
// identical bytes for the same request stream.
func RenderKVText(req Request) []byte {
	switch req.Op {
	case OpSet:
		head := fmt.Sprintf("set %s %d %d %d\r\n", req.Key, req.Flags, int(req.TTL/time.Second), len(req.Value))
		out := make([]byte, 0, len(head)+len(req.Value)+2)
		out = append(out, head...)
		out = append(out, req.Value...)
		out = append(out, '\r', '\n')
		return out
	case OpDelete:
		return []byte("delete " + req.Key + "\r\n")
	default:
		return []byte("get " + req.Key + "\r\n")
	}
}

// Next returns the next request.
func (g *KVGenerator) Next() Request {
	rank := g.zipf.Next()
	req := Request{Key: Key(rank)}
	if g.rng.Float64() < g.cfg.GetFraction {
		req.Op = OpGet
		return req
	}
	req.Op = OpSet
	req.Value = make([]byte, g.cfg.ValueSize)
	g.rng.Bytes(req.Value)
	return req
}

// HTTPConfig configures an HTTP request-byte generator.
type HTTPConfig struct {
	// Paths is the size of the static path population (default 64).
	Paths int
	// ZipfS is the path-popularity skew (default 0.99).
	ZipfS float64
	// HeadFraction is the fraction of HEAD requests (default 0.05); the
	// rest are GETs.
	HeadFraction float64
	// ExtraHeaders is the number of filler headers per request (default
	// 2), exercising the header loop of the parser.
	ExtraHeaders int
	// Seed seeds the generator.
	Seed uint64
}

func (c *HTTPConfig) fill() {
	if c.Paths <= 0 {
		c.Paths = 64
	}
	if c.ZipfS == 0 {
		c.ZipfS = 0.99
	}
	if c.HeadFraction == 0 {
		c.HeadFraction = 0.05
	}
	if c.ExtraHeaders < 0 {
		c.ExtraHeaders = 0
	} else if c.ExtraHeaders == 0 {
		c.ExtraHeaders = 2
	}
}

// HTTPRequest is one generated HTTP request.
type HTTPRequest struct {
	Method string
	Path   string
	// Raw is the rendered HTTP/1.1 request head.
	Raw []byte
	// Malicious marks requests crafted to trigger a parser bug.
	Malicious bool
}

// Path returns the path string for rank i.
func Path(i int) string { return fmt.Sprintf("/static/page-%04d.html", i) }

// HTTPGenerator produces a deterministic stream of HTTP/1.1 request
// bytes with Zipf-distributed path popularity — the web-server
// counterpart of KVGenerator. Create with NewHTTP.
type HTTPGenerator struct {
	cfg  HTTPConfig
	rng  *RNG
	zipf *Zipf
}

// NewHTTP builds an HTTP request generator.
func NewHTTP(cfg HTTPConfig) (*HTTPGenerator, error) {
	cfg.fill()
	rng := NewRNG(cfg.Seed)
	z, err := NewZipf(rng, cfg.Paths, cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	return &HTTPGenerator{cfg: cfg, rng: rng, zipf: z}, nil
}

// Next returns the next request.
func (g *HTTPGenerator) Next() HTTPRequest {
	method := "GET"
	if g.rng.Float64() < g.cfg.HeadFraction {
		method = "HEAD"
	}
	path := Path(g.zipf.Next())
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", method, path)
	b.WriteString("host: localhost\r\n")
	for i := 0; i < g.cfg.ExtraHeaders; i++ {
		fmt.Fprintf(&b, "x-filler-%d: %016x\r\n", i, g.rng.Uint64())
	}
	b.WriteString("\r\n")
	return HTTPRequest{Method: method, Path: path, Raw: []byte(b.String())}
}

// MaliciousEvery wraps g so that every nth request is replaced by a
// malicious request (an attack payload on a SET).
type MaliciousEvery struct {
	G *KVGenerator
	// N is the attack period; every Nth request is malicious (N <= 0
	// disables attacks).
	N int
	i int
}

// Next returns the next request, marking every Nth as malicious.
func (m *MaliciousEvery) Next() Request {
	m.i++
	req := m.G.Next()
	if m.N > 0 && m.i%m.N == 0 {
		req.Op = OpSet
		req.Malicious = true
		if len(req.Value) == 0 {
			req.Value = make([]byte, 64)
		}
	}
	return req
}
