// Package workload provides deterministic workload generation for the
// experiment harness: a seedable PRNG, Zipf-distributed key selection
// (cache workloads are famously skewed), request mixes, and
// malicious-client schedules for the containment experiment (E4).
package workload

import (
	"fmt"
	"math"
	"time"
)

// RNG is a small, fast, deterministic PRNG (splitmix64). The zero value
// is usable but every zero-seeded RNG yields the same stream; use New
// with distinct seeds for independent streams. Not safe for concurrent
// use.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bytes fills dst with random bytes.
func (r *RNG) Bytes(dst []byte) {
	for i := range dst {
		if i%8 == 0 {
			v := r.Uint64()
			for j := 0; j < 8 && i+j < len(dst); j++ {
				dst[i+j] = byte(v >> (8 * j))
			}
		}
	}
}

// Zipf generates Zipf-distributed ranks in [0, n) with exponent s,
// using the classic inverse-CDF-over-precomputed-harmonics method.
// Deterministic given the RNG. Create with NewZipf.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with skew s (s=0 uniform,
// s≈0.99 is the YCSB default).
func NewZipf(rng *RNG, n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf needs n > 0, got %d", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("workload: zipf needs s >= 0, got %v", s)
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}, nil
}

// Next returns the next rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Op is a key-value operation type.
type Op uint8

// Operations.
const (
	OpGet Op = iota
	OpSet
	OpDelete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Request is one generated key-value request.
type Request struct {
	Op    Op
	Key   string
	Value []byte
	// TTL is the item lifetime for SETs (0 = no expiry), in virtual time.
	TTL time.Duration
	// Flags is the opaque client flags word stored with SETs (memcached
	// semantics: returned verbatim on GET).
	Flags uint32
	// Malicious marks requests crafted to trigger a memory-safety bug.
	Malicious bool
}

// KVConfig configures a key-value request generator.
type KVConfig struct {
	// Keys is the key-space size (default 10_000).
	Keys int
	// ZipfS is the key-popularity skew (default 0.99).
	ZipfS float64
	// GetFraction is the fraction of GETs (default 0.9, the memcached
	// read-heavy mix).
	GetFraction float64
	// ValueSize is the SET payload size in bytes (default 128).
	ValueSize int
	// Seed seeds the generator.
	Seed uint64
}

func (c *KVConfig) fill() {
	if c.Keys <= 0 {
		c.Keys = 10_000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 0.99
	}
	if c.GetFraction == 0 {
		c.GetFraction = 0.9
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 128
	}
}

// KVGenerator produces a deterministic stream of key-value requests.
type KVGenerator struct {
	cfg  KVConfig
	rng  *RNG
	zipf *Zipf
}

// NewKV builds a request generator.
func NewKV(cfg KVConfig) (*KVGenerator, error) {
	cfg.fill()
	rng := NewRNG(cfg.Seed)
	z, err := NewZipf(rng, cfg.Keys, cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	return &KVGenerator{cfg: cfg, rng: rng, zipf: z}, nil
}

// Key returns the key string for rank i.
func Key(i int) string { return fmt.Sprintf("key-%08d", i) }

// Next returns the next request.
func (g *KVGenerator) Next() Request {
	rank := g.zipf.Next()
	req := Request{Key: Key(rank)}
	if g.rng.Float64() < g.cfg.GetFraction {
		req.Op = OpGet
		return req
	}
	req.Op = OpSet
	req.Value = make([]byte, g.cfg.ValueSize)
	g.rng.Bytes(req.Value)
	return req
}

// MaliciousEvery wraps g so that every nth request is replaced by a
// malicious request (an attack payload on a SET).
type MaliciousEvery struct {
	G *KVGenerator
	// N is the attack period; every Nth request is malicious (N <= 0
	// disables attacks).
	N int
	i int
}

// Next returns the next request, marking every Nth as malicious.
func (m *MaliciousEvery) Next() Request {
	m.i++
	req := m.G.Next()
	if m.N > 0 && m.i%m.N == 0 {
		req.Op = OpSet
		req.Malicious = true
		if len(req.Value) == 0 {
			req.Value = make([]byte, 64)
		}
	}
	return req
}
