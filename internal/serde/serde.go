// Package serde implements the argument-serialization codecs used by the
// SDRaD-FFI layer (§III of the paper).
//
// SDRaD-FFI passes arbitrary arguments between isolated domains by
// serializing them into the target domain's heap and deserializing inside
// the domain (and the reverse for results). The paper proposes to
// "evaluate different serialization crates"; this package provides three
// codecs with different trade-offs, mirroring the design space of Rust's
// serde ecosystem:
//
//   - Raw: a length-prefixed concatenation of byte strings — the cheapest
//     possible transfer, usable only when every argument is already a
//     byte slice or string (bytemuck/abomonation-style).
//   - Binary: a compact type-tagged binary encoding (bincode-style).
//   - JSON: a self-describing text encoding (serde_json-style), the most
//     interoperable and the most expensive.
//
// Supported value kinds: bool, int64, uint64, float64, string, []byte.
package serde

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Sentinel errors.
var (
	// ErrUnsupportedType is returned for values outside the supported kinds.
	ErrUnsupportedType = errors.New("serde: unsupported argument type")
	// ErrCorrupt is returned when decoding malformed bytes.
	ErrCorrupt = errors.New("serde: corrupt encoding")
	// ErrRawOnlyBytes is returned by the Raw codec for non-byte arguments.
	ErrRawOnlyBytes = errors.New("serde: raw codec supports only []byte and string")
)

// Codec encodes and decodes argument vectors.
type Codec interface {
	// Name identifies the codec in experiment output.
	Name() string
	// Encode serializes the argument vector.
	Encode(args []any) ([]byte, error)
	// Decode reverses Encode.
	Decode(data []byte) ([]any, error)
}

// Codecs returns all available codecs in evaluation order.
func Codecs() []Codec {
	return []Codec{Raw{}, Binary{}, JSON{}}
}

// ByName returns the codec with the given name.
func ByName(name string) (Codec, error) {
	for _, c := range Codecs() {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("serde: unknown codec %q", name)
}

// ---- Raw ----

// Raw is the zero-copy-style codec: arguments must be []byte or string;
// the wire format is a count followed by length-prefixed payloads.
// Decoded values are always []byte.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Encode implements Codec.
func (Raw) Encode(args []any) ([]byte, error) {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(args)))
	buf.Write(tmp[:n])
	for i, a := range args {
		var b []byte
		switch v := a.(type) {
		case []byte:
			b = v
		case string:
			b = []byte(v)
		default:
			return nil, fmt.Errorf("%w: arg %d is %T", ErrRawOnlyBytes, i, a)
		}
		n := binary.PutUvarint(tmp[:], uint64(len(b)))
		buf.Write(tmp[:n])
		buf.Write(b)
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (Raw) Decode(data []byte) ([]any, error) {
	r := bytes.NewReader(data)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrCorrupt, err)
	}
	if count > uint64(len(data)) {
		return nil, fmt.Errorf("%w: implausible count %d", ErrCorrupt, count)
	}
	out := make([]any, 0, count)
	for i := uint64(0); i < count; i++ {
		ln, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: len of arg %d: %v", ErrCorrupt, i, err)
		}
		if ln > uint64(r.Len()) {
			return nil, fmt.Errorf("%w: arg %d length %d exceeds remainder", ErrCorrupt, i, ln)
		}
		b := make([]byte, ln)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("%w: arg %d: %v", ErrCorrupt, i, err)
		}
		out = append(out, b)
	}
	return out, nil
}

// ---- Binary ----

// Binary is the compact type-tagged binary codec (bincode-style).
type Binary struct{}

// Name implements Codec.
func (Binary) Name() string { return "binary" }

// Type tags for the binary codec.
const (
	tagBool  = 1
	tagInt   = 2
	tagUint  = 3
	tagFloat = 4
	tagStr   = 5
	tagBytes = 6
)

// Encode implements Codec.
func (Binary) Encode(args []any) ([]byte, error) {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(args)))
	buf.Write(tmp[:n])
	for i, a := range args {
		switch v := a.(type) {
		case bool:
			buf.WriteByte(tagBool)
			if v {
				buf.WriteByte(1)
			} else {
				buf.WriteByte(0)
			}
		case int64:
			buf.WriteByte(tagInt)
			n := binary.PutVarint(tmp[:], v)
			buf.Write(tmp[:n])
		case int:
			buf.WriteByte(tagInt)
			n := binary.PutVarint(tmp[:], int64(v))
			buf.Write(tmp[:n])
		case uint64:
			buf.WriteByte(tagUint)
			n := binary.PutUvarint(tmp[:], v)
			buf.Write(tmp[:n])
		case float64:
			buf.WriteByte(tagFloat)
			var f [8]byte
			binary.LittleEndian.PutUint64(f[:], math.Float64bits(v))
			buf.Write(f[:])
		case string:
			buf.WriteByte(tagStr)
			n := binary.PutUvarint(tmp[:], uint64(len(v)))
			buf.Write(tmp[:n])
			buf.WriteString(v)
		case []byte:
			buf.WriteByte(tagBytes)
			n := binary.PutUvarint(tmp[:], uint64(len(v)))
			buf.Write(tmp[:n])
			buf.Write(v)
		default:
			return nil, fmt.Errorf("%w: arg %d is %T", ErrUnsupportedType, i, a)
		}
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (Binary) Decode(data []byte) ([]any, error) {
	r := bytes.NewReader(data)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrCorrupt, err)
	}
	if count > uint64(len(data))+1 {
		return nil, fmt.Errorf("%w: implausible count %d", ErrCorrupt, count)
	}
	out := make([]any, 0, count)
	for i := uint64(0); i < count; i++ {
		tag, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: tag of arg %d: %v", ErrCorrupt, i, err)
		}
		switch tag {
		case tagBool:
			b, err := r.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("%w: bool arg %d", ErrCorrupt, i)
			}
			out = append(out, b != 0)
		case tagInt:
			v, err := binary.ReadVarint(r)
			if err != nil {
				return nil, fmt.Errorf("%w: int arg %d", ErrCorrupt, i)
			}
			out = append(out, v)
		case tagUint:
			v, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, fmt.Errorf("%w: uint arg %d", ErrCorrupt, i)
			}
			out = append(out, v)
		case tagFloat:
			var f [8]byte
			if _, err := io.ReadFull(r, f[:]); err != nil {
				return nil, fmt.Errorf("%w: float arg %d", ErrCorrupt, i)
			}
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(f[:])))
		case tagStr, tagBytes:
			ln, err := binary.ReadUvarint(r)
			if err != nil || ln > uint64(r.Len()) {
				return nil, fmt.Errorf("%w: length of arg %d", ErrCorrupt, i)
			}
			b := make([]byte, ln)
			if _, err := io.ReadFull(r, b); err != nil {
				return nil, fmt.Errorf("%w: payload of arg %d", ErrCorrupt, i)
			}
			if tag == tagStr {
				out = append(out, string(b))
			} else {
				out = append(out, b)
			}
		default:
			return nil, fmt.Errorf("%w: unknown tag %d", ErrCorrupt, tag)
		}
	}
	return out, nil
}

// ---- JSON ----

// JSON is the self-describing text codec (serde_json-style).
type JSON struct{}

// Name implements Codec.
func (JSON) Name() string { return "json" }

type jsonVal struct {
	T string `json:"t"`
	V any    `json:"v"`
}

// Encode implements Codec.
func (JSON) Encode(args []any) ([]byte, error) {
	vals := make([]jsonVal, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case bool:
			vals[i] = jsonVal{T: "b", V: v}
		case int64:
			vals[i] = jsonVal{T: "i", V: v}
		case int:
			vals[i] = jsonVal{T: "i", V: int64(v)}
		case uint64:
			vals[i] = jsonVal{T: "u", V: v}
		case float64:
			vals[i] = jsonVal{T: "f", V: v}
		case string:
			vals[i] = jsonVal{T: "s", V: v}
		case []byte:
			vals[i] = jsonVal{T: "x", V: base64.StdEncoding.EncodeToString(v)}
		default:
			return nil, fmt.Errorf("%w: arg %d is %T", ErrUnsupportedType, i, a)
		}
	}
	return json.Marshal(vals)
}

// Decode implements Codec.
func (JSON) Decode(data []byte) ([]any, error) {
	var vals []struct {
		T string          `json:"t"`
		V json.RawMessage `json:"v"`
	}
	if err := json.Unmarshal(data, &vals); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	out := make([]any, 0, len(vals))
	for i, jv := range vals {
		switch jv.T {
		case "b":
			var v bool
			if err := json.Unmarshal(jv.V, &v); err != nil {
				return nil, fmt.Errorf("%w: bool arg %d", ErrCorrupt, i)
			}
			out = append(out, v)
		case "i":
			var v int64
			if err := json.Unmarshal(jv.V, &v); err != nil {
				return nil, fmt.Errorf("%w: int arg %d", ErrCorrupt, i)
			}
			out = append(out, v)
		case "u":
			var v uint64
			if err := json.Unmarshal(jv.V, &v); err != nil {
				return nil, fmt.Errorf("%w: uint arg %d", ErrCorrupt, i)
			}
			out = append(out, v)
		case "f":
			var v float64
			if err := json.Unmarshal(jv.V, &v); err != nil {
				return nil, fmt.Errorf("%w: float arg %d", ErrCorrupt, i)
			}
			out = append(out, v)
		case "s":
			var v string
			if err := json.Unmarshal(jv.V, &v); err != nil {
				return nil, fmt.Errorf("%w: string arg %d", ErrCorrupt, i)
			}
			out = append(out, v)
		case "x":
			var s string
			if err := json.Unmarshal(jv.V, &s); err != nil {
				return nil, fmt.Errorf("%w: bytes arg %d", ErrCorrupt, i)
			}
			b, err := base64.StdEncoding.DecodeString(s)
			if err != nil {
				return nil, fmt.Errorf("%w: base64 arg %d", ErrCorrupt, i)
			}
			out = append(out, b)
		default:
			return nil, fmt.Errorf("%w: unknown tag %q", ErrCorrupt, jv.T)
		}
	}
	return out, nil
}

// Interface compliance checks.
var (
	_ Codec = Raw{}
	_ Codec = Binary{}
	_ Codec = JSON{}
)
