package serde

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func allArgs() []any {
	return []any{
		true, false,
		int64(-42), int64(math.MaxInt64), int64(math.MinInt64),
		uint64(0), uint64(math.MaxUint64),
		float64(3.14159), float64(-0.0), math.Inf(1),
		"", "hello world", "unicode: héllo 日本",
		[]byte{}, []byte{0x00, 0xff, 0x41},
	}
}

// normalize converts int to int64 and empty slices for comparison.
func normalize(args []any) []any {
	out := make([]any, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case int:
			out[i] = int64(v)
		case []byte:
			if len(v) == 0 {
				out[i] = []byte{}
			} else {
				out[i] = v
			}
		default:
			out[i] = a
		}
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	enc, err := Binary{}.Encode(allArgs())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Binary{}.Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want := normalize(allArgs())
	for i := range want {
		if wb, ok := want[i].([]byte); ok {
			if !bytes.Equal(wb, dec[i].([]byte)) {
				t.Errorf("arg %d: %v != %v", i, dec[i], wb)
			}
			continue
		}
		if !reflect.DeepEqual(dec[i], want[i]) {
			t.Errorf("arg %d: got %v (%T), want %v (%T)", i, dec[i], dec[i], want[i], want[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	args := []any{true, int64(-7), uint64(9), 2.5, "s", []byte{1, 2}}
	enc, err := JSON{}.Encode(args)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := JSON{}.Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(dec) != len(args) {
		t.Fatalf("len = %d", len(dec))
	}
	if dec[0] != true || dec[1] != int64(-7) || dec[2] != uint64(9) || dec[3] != 2.5 || dec[4] != "s" {
		t.Errorf("decoded: %#v", dec)
	}
	if !bytes.Equal(dec[5].([]byte), []byte{1, 2}) {
		t.Errorf("bytes arg: %v", dec[5])
	}
}

func TestRawRoundTrip(t *testing.T) {
	args := []any{[]byte("abc"), "def", []byte{}}
	enc, err := Raw{}.Encode(args)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Raw{}.Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want := [][]byte{[]byte("abc"), []byte("def"), {}}
	for i := range want {
		if !bytes.Equal(dec[i].([]byte), want[i]) {
			t.Errorf("arg %d = %q, want %q", i, dec[i], want[i])
		}
	}
}

func TestRawRejectsNonBytes(t *testing.T) {
	_, err := Raw{}.Encode([]any{int64(1)})
	if !errors.Is(err, ErrRawOnlyBytes) {
		t.Errorf("err = %v, want ErrRawOnlyBytes", err)
	}
}

func TestUnsupportedType(t *testing.T) {
	type weird struct{}
	for _, c := range []Codec{Binary{}, JSON{}} {
		if _, err := c.Encode([]any{weird{}}); !errors.Is(err, ErrUnsupportedType) {
			t.Errorf("%s: err = %v, want ErrUnsupportedType", c.Name(), err)
		}
	}
}

func TestIntIsNormalizedToInt64(t *testing.T) {
	for _, c := range []Codec{Binary{}, JSON{}} {
		enc, err := c.Encode([]any{42})
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		dec, err := c.Decode(enc)
		if err != nil || dec[0] != int64(42) {
			t.Errorf("%s: dec = %#v, %v", c.Name(), dec, err)
		}
	}
}

func TestCorruptInputs(t *testing.T) {
	corrupt := [][]byte{
		nil,
		{},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // bad varint
		{0x02, 0x01},             // count 2, truncated
		{0x01, 0x63},             // binary: unknown tag 0x63
		{0x01, 0x05, 0xff, 0xff}, // binary: string length overrun
	}
	for _, c := range []Codec{Raw{}, Binary{}} {
		for i, data := range corrupt {
			if _, err := c.Decode(data); err == nil && len(data) > 0 {
				// Empty input may decode to zero args for some codecs;
				// everything else must error.
				t.Errorf("%s: corrupt input %d decoded successfully", c.Name(), i)
			}
		}
	}
	if _, err := (JSON{}).Decode([]byte("{not json")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("JSON corrupt = %v, want ErrCorrupt", err)
	}
	if _, err := (JSON{}).Decode([]byte(`[{"t":"z","v":1}]`)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("JSON unknown tag = %v, want ErrCorrupt", err)
	}
}

func TestCodecsAndByName(t *testing.T) {
	cs := Codecs()
	if len(cs) != 3 {
		t.Fatalf("Codecs() = %d", len(cs))
	}
	for _, c := range cs {
		got, err := ByName(c.Name())
		if err != nil || got.Name() != c.Name() {
			t.Errorf("ByName(%q) = %v, %v", c.Name(), got, err)
		}
	}
	if _, err := ByName("protobuf"); err == nil {
		t.Error("ByName(unknown) should fail")
	}
}

// Property: binary codec round-trips arbitrary (string, []byte, int64,
// uint64, bool) vectors.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(ss []string, bs [][]byte, is []int64, us []uint64, flags []bool) bool {
		var args []any
		for _, v := range ss {
			args = append(args, v)
		}
		for _, v := range bs {
			args = append(args, v)
		}
		for _, v := range is {
			args = append(args, v)
		}
		for _, v := range us {
			args = append(args, v)
		}
		for _, v := range flags {
			args = append(args, v)
		}
		enc, err := Binary{}.Encode(args)
		if err != nil {
			return false
		}
		dec, err := Binary{}.Decode(enc)
		if err != nil || len(dec) != len(args) {
			return false
		}
		for i := range args {
			if b, ok := args[i].([]byte); ok {
				if !bytes.Equal(b, dec[i].([]byte)) {
					return false
				}
				continue
			}
			if !reflect.DeepEqual(args[i], dec[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: decoding random garbage never panics and either errs or
// returns a well-formed vector.
func TestDecodeGarbageNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		for _, c := range Codecs() {
			vals, err := c.Decode(data)
			if err == nil {
				for _, v := range vals {
					if v == nil {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodedSizeOrdering(t *testing.T) {
	// The E8 claim: raw < binary < json for byte payloads.
	payload := []any{bytes.Repeat([]byte{0xab}, 1024)}
	raw, _ := Raw{}.Encode(payload)
	bin, _ := Binary{}.Encode(payload)
	js, _ := JSON{}.Encode(payload)
	if !(len(raw) <= len(bin) && len(bin) < len(js)) {
		t.Errorf("size ordering violated: raw=%d binary=%d json=%d", len(raw), len(bin), len(js))
	}
}
