package serde

import "testing"

// FuzzDecode checks that no codec panics on arbitrary input, and that
// anything a codec accepts re-encodes and re-decodes stably.
func FuzzDecode(f *testing.F) {
	for _, c := range Codecs() {
		if enc, err := c.Encode([]any{int64(-5), "s", []byte{1, 2}}); err == nil {
			f.Add(enc)
		}
		if enc, err := c.Encode([]any{[]byte("payload")}); err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, in []byte) {
		for _, c := range Codecs() {
			vals, err := c.Decode(in)
			if err != nil {
				continue
			}
			enc, err := c.Encode(vals)
			if err != nil {
				t.Errorf("%s: decoded values failed to re-encode: %v", c.Name(), err)
				continue
			}
			if _, err := c.Decode(enc); err != nil {
				t.Errorf("%s: re-encoded bytes failed to decode: %v", c.Name(), err)
			}
		}
	})
}
