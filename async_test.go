package sdrad_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	sdrad "repro"
	"repro/internal/fault"
)

func newAsync(t *testing.T, workers int, cfg sdrad.AsyncConfig) (*sdrad.AsyncPool, *sdrad.Pool) {
	t.Helper()
	pool, err := sdrad.NewPool(workers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pool.Close() })
	ap, err := sdrad.NewAsyncPool(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ap.Close() })
	return ap, pool
}

func TestAsyncPoolSubmitFlush(t *testing.T) {
	ap, _ := newAsync(t, 2, sdrad.AsyncConfig{MaxBatch: 8, MaxInflight: 256})

	const n = 100
	var done atomic.Int64
	futs := make([]*sdrad.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = ap.Submit(context.Background(), func(c *sdrad.Ctx) error {
			p := c.MustAlloc(64)
			c.MustStore(p, make([]byte, 64))
			c.MustFree(p)
			done.Add(1)
			return nil
		})
	}
	ap.Flush()
	for i, f := range futs {
		select {
		case <-f.Done():
		default:
			t.Fatalf("future %d unresolved after Flush", i)
		}
		if err := f.Err(); err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
	if done.Load() != n {
		t.Errorf("%d calls executed, want %d", done.Load(), n)
	}
	st := ap.Stats()
	if st.Submitted != n {
		t.Errorf("Submitted = %d, want %d", st.Submitted, n)
	}
	if st.Batches == 0 || st.Batches > n {
		t.Errorf("Batches = %d, want within [1, %d]", st.Batches, n)
	}
}

// TestAsyncPoolBatchesCoalesce: with the consumers busy, queued calls
// coalesce into multi-call batches whose domain entries are amortized.
func TestAsyncPoolBatchesCoalesce(t *testing.T) {
	ap, pool := newAsync(t, 1, sdrad.AsyncConfig{MaxBatch: 16, MaxInflight: 256})

	gate := make(chan struct{})
	first := ap.Submit(context.Background(), func(c *sdrad.Ctx) error {
		<-gate // stall the single worker inside batch 1
		return nil
	})
	const n = 32
	for i := 0; i < n; i++ {
		ap.Submit(context.Background(), func(c *sdrad.Ctx) error {
			p := c.MustAlloc(32)
			c.MustFree(p)
			return nil
		})
	}
	close(gate)
	ap.Flush()
	if err := first.Err(); err != nil {
		t.Fatal(err)
	}
	st := ap.Stats()
	if st.MaxBatch < 2 {
		t.Errorf("MaxBatch = %d, want coalesced batches (>= 2)", st.MaxBatch)
	}
	// 33 calls, batches of up to 16: far fewer entries than calls.
	if ds := pool.DomainStats(); ds.Entries >= n {
		t.Errorf("%d domain entries for %d calls, want amortization", ds.Entries, n+1)
	}
	// Latency summaries exist for the observed batch sizes.
	if len(ap.BatchLatency()) == 0 {
		t.Error("no batch-latency summaries recorded")
	}
}

func TestAsyncPoolOverloadBackpressure(t *testing.T) {
	ap, _ := newAsync(t, 1, sdrad.AsyncConfig{MaxBatch: 4, MaxInflight: 4})

	gate := make(chan struct{})
	blocker := ap.Submit(context.Background(), func(c *sdrad.Ctx) error {
		<-gate
		return nil
	})
	// The queue bound is 4 (MaxInflight/workers); with the worker stalled
	// on the blocker, flooding 16 submissions must trip admission control
	// regardless of whether the blocker still occupies a queue slot.
	accepted, overloaded := 0, 0
	var futs []*sdrad.Future
	for i := 0; i < 16; i++ {
		f := ap.Submit(context.Background(), func(c *sdrad.Ctx) error { return nil })
		select {
		case <-f.Done():
			if _, ok := sdrad.IsOverload(f.Err()); ok {
				overloaded++
				continue
			}
		default:
		}
		accepted++
		futs = append(futs, f)
	}
	if overloaded == 0 {
		t.Error("no submission rejected with OverloadError at MaxInflight 4")
	}
	if accepted == 0 {
		t.Error("every submission rejected; queue should hold up to its bound")
	}
	close(gate)
	ap.Flush()
	if err := blocker.Err(); err != nil {
		t.Errorf("blocker: %v", err)
	}
	for i, f := range futs {
		if err := f.Err(); err != nil {
			t.Errorf("accepted call %d: %v", i, err)
		}
	}
	if st := ap.Stats(); st.Rejected != uint64(overloaded) {
		t.Errorf("Stats.Rejected = %d, want %d", st.Rejected, overloaded)
	}
}

// TestAsyncPoolFaultIsolation: violations and budget blowups inside
// coalesced batches resolve per call, exactly as serial execution would.
func TestAsyncPoolFaultIsolation(t *testing.T) {
	ap, _ := newAsync(t, 2, sdrad.AsyncConfig{MaxBatch: 8, MaxInflight: 512})

	const n = 120
	futs := make([]*sdrad.Future, n)
	for i := 0; i < n; i++ {
		switch i % 10 {
		case 3:
			futs[i] = ap.Submit(context.Background(), func(c *sdrad.Ctx) error {
				fault.Inject(c, fault.UseAfterFree, 0)
				return nil
			})
		case 7:
			futs[i] = ap.Submit(context.Background(), func(c *sdrad.Ctx) error {
				p := c.MustAlloc(64)
				for j := 0; j < 100_000; j++ {
					_ = c.MustLoad64(p)
				}
				c.MustFree(p)
				return nil
			}, sdrad.WithCycleBudget(50_000))
		default:
			futs[i] = ap.Submit(context.Background(), func(c *sdrad.Ctx) error {
				p := c.MustAlloc(48)
				c.MustStore(p, make([]byte, 48))
				c.MustFree(p)
				return nil
			})
		}
	}
	ap.Flush()
	for i, f := range futs {
		err := f.Err()
		switch i % 10 {
		case 3:
			if _, ok := sdrad.IsViolation(err); !ok {
				t.Errorf("call %d: %v, want ViolationError", i, err)
			}
		case 7:
			if _, ok := sdrad.IsBudget(err); !ok {
				t.Errorf("call %d: %v, want BudgetError", i, err)
			}
		default:
			if err != nil {
				t.Errorf("benign call %d poisoned: %v", i, err)
			}
		}
	}
}

func TestAsyncPoolRunnerAndWorkerAffinity(t *testing.T) {
	ap, pool := newAsync(t, 4, sdrad.AsyncConfig{})

	var r sdrad.Runner = ap // compile-time + runtime Runner use
	if err := r.Do(context.Background(), func(c *sdrad.Ctx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// Pin 50 calls to worker 2; its request counter gets all of them.
	before := pool.Stats().Requests[2]
	for i := 0; i < 50; i++ {
		if err := ap.Do(context.Background(), func(c *sdrad.Ctx) error { return nil }, sdrad.WithWorker(2)); err != nil {
			t.Fatal(err)
		}
	}
	if got := pool.Stats().Requests[2] - before; got != 50 {
		t.Errorf("worker 2 served %d pinned calls, want 50", got)
	}
}

func TestAsyncPoolCloseSemantics(t *testing.T) {
	pool, err := sdrad.NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()
	ap, err := sdrad.NewAsyncPool(pool, sdrad.AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.Do(context.Background(), func(c *sdrad.Ctx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	f := ap.Submit(context.Background(), func(c *sdrad.Ctx) error { return nil })
	if err := f.Err(); !errors.Is(err, sdrad.ErrAsyncClosed) {
		t.Errorf("Submit after Close = %v, want ErrAsyncClosed", err)
	}
	// The wrapped pool stays open.
	if err := pool.Run(func(c *sdrad.Ctx) error { return nil }); err != nil {
		t.Errorf("wrapped pool unusable after async Close: %v", err)
	}
}

// TestAsyncPoolDoBatch: the synchronous batch door blocks for queue
// space instead of rejecting and returns positional results.
func TestAsyncPoolDoBatch(t *testing.T) {
	ap, _ := newAsync(t, 1, sdrad.AsyncConfig{MaxBatch: 8, MaxInflight: 8})

	fns := make([]func(*sdrad.Ctx) error, 40) // 5x the queue bound
	for i := range fns {
		fns[i] = func(c *sdrad.Ctx) error {
			p := c.MustAlloc(16)
			c.MustFree(p)
			return nil
		}
	}
	fns[11] = func(c *sdrad.Ctx) error {
		c.MustStore64(0, 1) // null write
		return nil
	}
	errs := ap.DoBatch(context.Background(), fns)
	for i, err := range errs {
		if i == 11 {
			if _, ok := sdrad.IsViolation(err); !ok {
				t.Errorf("call 11 = %v, want ViolationError", err)
			}
			continue
		}
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
}

// TestAsyncPoolConcurrentHammer drives mixed traffic from many
// goroutines (run under -race): outcomes stay per-call correct and the
// layer neither loses nor double-resolves futures.
func TestAsyncPoolConcurrentHammer(t *testing.T) {
	ap, _ := newAsync(t, 4, sdrad.AsyncConfig{MaxBatch: 16, MaxInflight: 1 << 14})

	const producers, per = 8, 150
	var wg sync.WaitGroup
	var benignOK, contained, wrong atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				malicious := (p+i)%11 == 0
				err := ap.Do(context.Background(), func(c *sdrad.Ctx) error {
					b := c.MustAlloc(32)
					c.MustStore(b, make([]byte, 32))
					if malicious {
						fault.Inject(c, fault.HeapOverflow, 0)
					}
					c.MustFree(b)
					return nil
				})
				switch {
				case malicious:
					if _, ok := sdrad.IsViolation(err); ok {
						contained.Add(1)
					} else {
						wrong.Add(1)
					}
				case err == nil:
					benignOK.Add(1)
				default:
					wrong.Add(1)
				}
			}
		}(p)
	}
	wg.Wait()
	ap.Flush()
	if wrong.Load() != 0 {
		t.Errorf("%d calls resolved with the wrong class", wrong.Load())
	}
	if contained.Load() == 0 || benignOK.Load() == 0 {
		t.Errorf("degenerate mix: benign=%d contained=%d", benignOK.Load(), contained.Load())
	}
}
