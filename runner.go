package sdrad

import (
	"context"
	"errors"

	"repro/internal/core"
	"repro/internal/serde"
	"repro/internal/vclock"
)

// This file is Execution API v2: the Runner interface unifies the three
// execution backends (Domain, Pool, Bridge) behind one cancellable,
// policy-carrying entry point, and RunOptions carry the paper's per-call
// policy — retries after rewind, the alternate action, worker affinity,
// and virtual-cycle budgets derived from context deadlines.

// Runner executes a function inside an isolated, rewindable domain. It is
// implemented by *Domain, *Pool, and *Bridge (via its backing domain), so
// policy-carrying call sites — and the typed Exec helper — work against
// any backend.
//
// Every implementation is deterministic on the simulated machine: the
// same sequence of Do calls with the same fns and options consumes the
// same virtual cycles and produces the same outcomes, on every run and
// at any GOMAXPROCS. The campaign engine's differential oracles
// (DESIGN.md §8) are built on this contract — wall-clock time may vary
// freely, virtual behavior may not.
type Runner interface {
	// Do executes fn inside a domain, applying the per-call policy in
	// opts. A memory-safety violation rewinds and discards the domain and
	// surfaces as a *ViolationError (after retries and the fallback, if
	// configured). A context deadline maps to a virtual-cycle budget: a
	// run that exhausts it is rewound the same way and surfaces as a
	// *BudgetError. A context cancelled before (or between) attempts
	// returns ctx.Err() without entering a domain.
	Do(ctx context.Context, fn func(*Ctx) error, opts ...RunOption) error
}

// Interface compliance checks.
var (
	_ Runner = (*Domain)(nil)
	_ Runner = (*Pool)(nil)
	_ Runner = (*Bridge)(nil)
)

// BudgetError reports that a run exhausted its virtual-cycle budget
// (from WithCycleBudget or a context deadline) and was preempted: the
// domain was rewound and discarded exactly as after a violation, but the
// event is not a memory-safety detection.
type BudgetError = core.BudgetError

// IsBudget reports whether err is (or wraps) a *BudgetError.
func IsBudget(err error) (*BudgetError, bool) { return core.IsBudget(err) }

// RunOption configures one Do or Exec call.
type RunOption func(*runSettings)

// runTarget records which domain the last attempt of a Do call entered;
// Exec probes it to attribute violations (see withTargetProbe).
type runTarget struct {
	sys *core.System
	udi core.UDI
}

// runSettings is the resolved per-call policy.
type runSettings struct {
	fallback  func(*ViolationError) error
	retries   int
	worker    int
	hasWorker bool
	budget    uint64
	codecName string
	target    *runTarget
}

// withTargetProbe (internal) lets Exec learn which domain Do actually
// entered, so it can apply the fallback only to that domain's own
// violations.
func withTargetProbe(t *runTarget) RunOption {
	return func(s *runSettings) { s.target = t }
}

func applyRunOptions(opts []RunOption) runSettings {
	var set runSettings
	for _, o := range opts {
		o(&set)
	}
	return set
}

// WithFallback installs the paper's alternate action: if the run still
// ends in a violation of the entered domain after any retries, fallback
// is invoked with the *ViolationError (the domain has already been
// rewound and discarded) and its result becomes Do's result. A nested
// or foreign domain's *ViolationError returned by fn passes through as
// an ordinary error — the entered domain was not rewound.
func WithFallback(fallback func(*ViolationError) error) RunOption {
	return func(s *runSettings) { s.fallback = fallback }
}

// WithRetries re-enters the domain up to n more times after a rewind:
// each violation of the entered domain counts one retry, so a call makes
// at most n+1 attempts. Application errors (including foreign domains'
// rewind errors) and budget preemptions are not retried.
func WithRetries(n int) RunOption {
	return func(s *runSettings) {
		if n > 0 {
			s.retries = n
		}
	}
}

// WithWorker pins the call to pool worker i (modulo the pool size),
// replacing Pool.RunOn: all attempts — including retries — run on that
// worker, so related calls serialize on one simulated machine. Domain
// and Bridge runners, which have no workers, ignore it.
func WithWorker(i int) RunOption {
	return func(s *runSettings) {
		s.worker = i
		s.hasWorker = true
	}
}

// WithCycleBudget bounds the run to c virtual cycles: a run that
// consumes the budget is preempted at its next simulated-machine
// operation, rewound, and surfaces as a *BudgetError. When the context
// also carries a deadline, the tighter of the two budgets applies.
func WithCycleBudget(c uint64) RunOption {
	return func(s *runSettings) { s.budget = c }
}

// WithCodec selects the serde codec Exec transfers request and response
// values with: CodecRaw, CodecBinary (the default), or CodecJSON. Do
// ignores it (Do moves no data).
func WithCodec(name string) RunOption {
	return func(s *runSettings) { s.codecName = name }
}

// resolveCodec returns the codec Exec should use.
func (s *runSettings) resolveCodec() (serde.Codec, error) {
	if s.codecName == "" {
		return serde.Binary{}, nil
	}
	return serde.ByName(s.codecName)
}

// budgetFor computes the effective cycle budget for one attempt: the
// explicit WithCycleBudget value, tightened by the context deadline
// mapped through the cost model (vclock.CyclesUntilDeadline). 0 means no
// budget.
func (s *runSettings) budgetFor(ctx context.Context, hz uint64) uint64 {
	budget := s.budget
	if deadline, ok := ctx.Deadline(); ok {
		if db := vclock.CyclesUntilDeadline(deadline, hz); budget == 0 || db < budget {
			budget = db
		}
	}
	return budget
}

// runPolicy drives one Do call: attempt/retry/fallback around a backend-
// supplied attempt function. attempt receives the cycle budget for that
// attempt and returns the UDI of the domain it entered plus the outcome
// of that entry. Retries and the fallback apply only when the attempted
// domain itself was violated and rewound — a nested or foreign domain's
// *ViolationError propagating through fn is an application error here
// (the attempted domain was never rewound, so re-entering it would run
// against dirty state and the fallback's contract would be false).
func runPolicy(ctx context.Context, set runSettings, hz uint64, attempt func(budget uint64) (*core.System, core.UDI, error)) error {
	var lastViolation *ViolationError
	for tries := 0; ; tries++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		sys, udi, err := attempt(set.budgetFor(ctx, hz))
		if set.target != nil {
			set.target.sys, set.target.udi = sys, udi
		}
		if errors.Is(err, core.ErrQuarantined) && lastViolation != nil {
			// A retry found the domain quarantined by the violation(s)
			// absorbed just above: the run's outcome IS the violation,
			// so the alternate action still applies.
			if set.fallback != nil {
				return set.fallback(lastViolation)
			}
			return err
		}
		v, isViolation := IsViolation(err)
		if !isViolation || !core.RewoundBy(err, sys, udi) {
			// Clean exit, application error (including foreign rewind
			// errors), or budget preemption: none of these retry, and
			// the fallback is own-violations-only.
			return err
		}
		lastViolation = v
		if tries < set.retries {
			continue
		}
		if set.fallback != nil {
			return set.fallback(v)
		}
		return err
	}
}

// Do implements Runner: it executes fn inside the domain under the given
// per-call policy. With no options and a background context it behaves
// exactly like Run. WithWorker is ignored (a Domain is one worker).
func (d *Domain) Do(ctx context.Context, fn func(*Ctx) error, opts ...RunOption) error {
	return d.doSettings(ctx, applyRunOptions(opts), fn)
}

// doSettings is Do after option resolution — the serial path batch
// replays re-enter with a call's already-resolved policy.
func (d *Domain) doSettings(ctx context.Context, set runSettings, fn func(*Ctx) error) error {
	hz := d.sup.sys.Clock().Model().CPUHz
	return runPolicy(ctx, set, hz, func(budget uint64) (*core.System, core.UDI, error) {
		return d.sup.sys, d.udi, d.sup.sys.EnterWithBudget(d.udi, budget, fn)
	})
}

// BatchItem is one call of a heterogeneous batch: its own context (and
// therefore its own deadline-derived budget) and its own per-call
// options. A nil Ctx means context.Background().
type BatchItem struct {
	Ctx  context.Context
	Fn   func(*Ctx) error
	Opts []RunOption
}

func (it *BatchItem) toCall() *batchCall {
	ctx := it.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return &batchCall{ctx: ctx, fn: it.Fn, set: applyRunOptions(it.Opts)}
}

// DoBatch executes fns back to back inside one domain entry: one
// Enter/Exit, one exit-time integrity sweep. Results are positional:
// errs[i] is what Do(ctx, fns[i], opts...) would have returned. The
// calls share the entry, so call i+1 observes the heap state call i left
// behind (the domain's memory persists across DoBatch like it does
// across Do); if any call faults, the domain is rewound and every call
// re-derives its outcome through the serial path, which re-executes
// calls (the WithRetries at-least-once contract). See the replay rule in
// batch.go and DESIGN.md §9.
func (d *Domain) DoBatch(ctx context.Context, fns []func(*Ctx) error, opts ...RunOption) []error {
	items := make([]BatchItem, len(fns))
	for i, fn := range fns {
		items[i] = BatchItem{Ctx: ctx, Fn: fn, Opts: opts}
	}
	return d.DoBatchItems(items)
}

// DoBatchItems is DoBatch for heterogeneous batches: each item carries
// its own context and options, so calls with different deadlines or
// policies can still share one domain entry. Network servers batching
// concurrent connections use this form.
func (d *Domain) DoBatchItems(items []BatchItem) []error {
	calls := make([]*batchCall, len(items))
	for i := range items {
		calls[i] = items[i].toCall()
	}
	b := &batchBackend{
		sys:        d.sup.sys,
		udi:        d.udi,
		hz:         d.sup.sys.Clock().Model().CPUHz,
		persistent: true,
		enter: func(budget uint64, fn func(*Ctx) error) error {
			return d.sup.sys.EnterWithBudget(d.udi, budget, fn)
		},
		discard: d.Discard,
		serial:  func(c *batchCall) error { return d.doSettings(c.ctx, c.set, c.fn) },
	}
	rep := b.run(calls)
	if d.onBatch != nil {
		d.onBatch(BatchReport{Size: len(calls), Committed: rep.Committed, Replayed: rep.Replayed})
	}
	errs := make([]error, len(calls))
	for i, c := range calls {
		errs[i] = c.err
	}
	return errs
}

// Do implements Runner on the bridge's backing domain: fn runs isolated
// in the same domain Call uses, under the same per-call policy surface.
func (b *Bridge) Do(ctx context.Context, fn func(*Ctx) error, opts ...RunOption) error {
	return b.d.Do(ctx, fn, opts...)
}
