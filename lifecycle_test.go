package sdrad_test

import (
	"testing"

	sdrad "repro"
	"repro/internal/lifecycle"
	"repro/internal/lifecycle/lifecycletest"
)

// TestLifecycleConformance runs the shared lifecycle battery against the
// root package's three components. Each case builds a pristine deferred
// instance per subtest, so illegal-transition probes never share state.
func TestLifecycleConformance(t *testing.T) {
	lifecycletest.Run(t, []lifecycletest.Case{
		{
			Name: "Domain",
			New: func(t *testing.T) lifecycle.Component {
				return sdrad.New().DeferDomain(sdrad.WithHeapPages(2), sdrad.WithStackPages(2))
			},
		},
		{
			Name: "Pool",
			New: func(t *testing.T) lifecycle.Component {
				return sdrad.NewDeferredPool(2, nil)
			},
			Resize: func(c lifecycle.Component, n int) error {
				return c.(*sdrad.Pool).Resize(n)
			},
			Grow:   4,
			Shrink: 2,
		},
		{
			Name: "AsyncPool",
			New: func(t *testing.T) lifecycle.Component {
				pool, err := sdrad.NewPool(2)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = pool.Close() })
				return sdrad.NewDeferredAsyncPool(pool, sdrad.AsyncConfig{MaxBatch: 8, MaxInflight: 64})
			},
			Resize: func(c lifecycle.Component, n int) error {
				return c.(*sdrad.AsyncPool).Resize(n)
			},
			Grow:   4,
			Shrink: 2,
		},
	})
}
