package sdrad_test

import (
	"fmt"
	"sync"
	"testing"

	sdrad "repro"
)

// TestFastPathPoolHammer drives heavy concurrent memory traffic through
// a Supervisor pool under -race: every worker's private machine churns
// its radix table, software TLB, and dirty bitmap (alloc/store/load/free,
// violations that rewind, and explicit discards) from its own goroutine,
// while aggregate stats are read concurrently. The mem internals are
// per-worker (the simulation is single-core per machine), so the race
// detector proves the pool keeps them confined.
func TestFastPathPoolHammer(t *testing.T) {
	const (
		workers = 4
		gs      = 8
		iters   = 300
	)
	pool, err := sdrad.NewPool(workers)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 7 {
				case 6:
					// A violation: wild write, contained by rewind +
					// dirty-bounded discard.
					err := pool.Run(func(c *sdrad.Ctx) error {
						p := c.MustAlloc(512)
						c.MustStore(p, make([]byte, 512))
						c.MustStore64(0xdead0000, 1)
						return nil
					})
					if _, ok := sdrad.IsViolation(err); !ok {
						t.Errorf("g%d i%d: want violation, got %v", g, i, err)
						return
					}
				default:
					size := 64 + (g*131+i*17)%2048
					err := pool.Run(func(c *sdrad.Ctx) error {
						p := c.MustAlloc(size)
						buf := make([]byte, size)
						for j := range buf {
							buf[j] = byte(g + i + j)
						}
						c.MustStore(p, buf)
						rd := make([]byte, size)
						c.MustLoad(p, rd)
						for j := range rd {
							if rd[j] != buf[j] {
								return fmt.Errorf("readback mismatch at %d", j)
							}
						}
						c.MustFree(p)
						return nil
					})
					if err != nil {
						t.Errorf("g%d i%d: %v", g, i, err)
						return
					}
				}
				if i%50 == 0 {
					// Concurrent introspection of the aggregated stats.
					ms := pool.MemoryStats()
					if ms.TLBHits == 0 && i > 0 {
						t.Errorf("g%d i%d: no TLB hits across pool", g, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	ms := pool.MemoryStats()
	if ms.TLBHits == 0 || ms.TLBMisses == 0 {
		t.Errorf("TLB counters not moving: %+v", ms)
	}
	if ms.Faults == 0 {
		t.Error("violation runs produced no faults")
	}
	// Every run ends in a discard, so dirtiness stays bounded by the
	// workers' stacks + current working set, far below cumulative traffic.
	if ms.DirtyPages > ms.MappedPages {
		t.Errorf("DirtyPages %d exceeds MappedPages %d", ms.DirtyPages, ms.MappedPages)
	}
}
