// Benchmarks regenerating every table/figure of the evaluation (E1..E8;
// see DESIGN.md §4) plus the ablations of DESIGN.md §5. Wall-clock
// numbers here measure the simulator itself; the paper-shaped virtual
// time measurements are produced by `go run ./cmd/sdrad-bench`, which
// these benches drive through the same code paths.
package sdrad_test

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	sdrad "repro"
	"repro/internal/avail"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/exp"
	"repro/internal/httpd"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/procmodel"
	"repro/internal/serde"
	"repro/internal/workload"
)

// ---- E1: steady-state overhead ----

func benchKV(b *testing.B, mode kvstore.Mode) {
	b.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := kvstore.NewCache(sys, 1, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := kvstore.NewServer(sys, cache, kvstore.ServerConfig{Mode: mode, InterArrival: time.Nanosecond})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewKV(workload.KVConfig{Seed: 1, Keys: 5000})
	if err != nil {
		b.Fatal(err)
	}
	startVT := sys.Clock().Now() // exclude setup from the virtual metric
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := srv.Handle(i%8, gen.Next()); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
	b.StopTimer()
	if vt := sys.Clock().Now() - startVT; vt > 0 {
		b.ReportMetric(float64(b.N)/vt.Seconds(), "vops/s")
	}
}

func BenchmarkE1KVNative(b *testing.B) { benchKV(b, kvstore.ModeNative) }
func BenchmarkE1KVSDRaD(b *testing.B)  { benchKV(b, kvstore.ModeSDRaD) }

func benchHTTP(b *testing.B, mode httpd.Mode) {
	b.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	srv, err := httpd.NewServer(sys, httpd.Config{Mode: mode, InterArrival: time.Nanosecond})
	if err != nil {
		b.Fatal(err)
	}
	srv.HandleFunc("/", []byte("<html>index</html>"))
	raw := httpd.BuildRequest("GET", "/", nil)
	startVT := sys.Clock().Now() // exclude setup from the virtual metric
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := srv.Serve(i%8, raw); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
	b.StopTimer()
	if vt := sys.Clock().Now() - startVT; vt > 0 {
		b.ReportMetric(float64(b.N)/vt.Seconds(), "vops/s")
	}
}

func BenchmarkE1HTTPNative(b *testing.B) { benchHTTP(b, httpd.ModeNative) }
func BenchmarkE1HTTPSDRaD(b *testing.B)  { benchHTTP(b, httpd.ModeSDRaD) }

// ---- E1 batched: submission-queue request coalescing ----
//
// The batched benchmarks serve the same workloads as the serial E1
// pair, but pipeline requests through Server.HandleBatch/ServeBatch in
// waves of batch= requests: one network round trip per wave and one
// domain Enter/Exit + integrity sweep per worker group instead of per
// request. batch=1 measures the batching layer's overhead at no
// coalescing; batch=32 is the acceptance point (>= 1.5x the serial
// SDRaD ops/s on the same workload).

func benchKVBatched(b *testing.B, batch int) {
	b.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := kvstore.NewCache(sys, 1, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := kvstore.NewServer(sys, cache, kvstore.ServerConfig{Mode: kvstore.ModeSDRaD, InterArrival: time.Nanosecond})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewKV(workload.KVConfig{Seed: 1, Keys: 5000})
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]kvstore.BatchRequest, 0, batch)
	startVT := sys.Clock().Now()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if rem := b.N - i; rem < n {
			n = rem
		}
		reqs = reqs[:0]
		for j := 0; j < n; j++ {
			reqs = append(reqs, kvstore.BatchRequest{ClientID: (i + j) % 8, Req: gen.Next()})
		}
		for _, resp := range srv.HandleBatch(reqs) {
			if resp.Err != nil {
				b.Fatal(resp.Err)
			}
		}
	}
	b.StopTimer()
	if vt := sys.Clock().Now() - startVT; vt > 0 {
		b.ReportMetric(float64(b.N)/vt.Seconds(), "vops/s")
	}
}

func BenchmarkE1KVSDRaDBatched(b *testing.B) {
	for _, k := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", k), func(b *testing.B) { benchKVBatched(b, k) })
	}
}

// ---- E1 durable: WAL group commit on the E1 hot path ----
//
// Same workload and batching as BenchmarkE1KVSDRaDBatched, but with the
// persistence engine attached: every committed batch is one WAL append
// (and, with fsync, one fsync). fsyncs/req is the amortization claim in
// metric form: batch=1 starts at the workload's write fraction (reads
// stage no records, so a read-only "batch" costs no sync) and falls
// with batch size as group commit coalesces the writes. The snap=
// variants add the periodic incremental-snapshot cost at the
// acceptance point.

func benchKVDurable(b *testing.B, batch int, fsync bool, snapEvery int) {
	b.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := kvstore.NewCache(sys, 1, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	var pm metrics.Persist
	srv, err := kvstore.NewServer(sys, cache, kvstore.ServerConfig{
		Mode:         kvstore.ModeSDRaD,
		InterArrival: time.Nanosecond,
		Persist: &kvstore.PersistConfig{
			Dir: b.TempDir(), Fsync: fsync, SnapshotEvery: snapEvery, Metrics: &pm,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewKV(workload.KVConfig{Seed: 1, Keys: 5000})
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]kvstore.BatchRequest, 0, batch)
	startVT := sys.Clock().Now()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if rem := b.N - i; rem < n {
			n = rem
		}
		reqs = reqs[:0]
		for j := 0; j < n; j++ {
			reqs = append(reqs, kvstore.BatchRequest{ClientID: (i + j) % 8, Req: gen.Next()})
		}
		for _, resp := range srv.HandleBatch(reqs) {
			if resp.Err != nil {
				b.Fatal(resp.Err)
			}
		}
	}
	b.StopTimer()
	if err := srv.Close(); err != nil {
		b.Fatal(err)
	}
	if vt := sys.Clock().Now() - startVT; vt > 0 {
		b.ReportMetric(float64(b.N)/vt.Seconds(), "vops/s")
	}
	b.ReportMetric(float64(pm.Snapshot().Fsyncs)/float64(b.N), "fsyncs/req")
}

func BenchmarkE1KVSDRaDDurable(b *testing.B) {
	for _, fsync := range []bool{false, true} {
		for _, k := range []int{1, 8, 32} {
			b.Run(fmt.Sprintf("fsync=%v/batch=%d", fsync, k), func(b *testing.B) {
				benchKVDurable(b, k, fsync, 0)
			})
		}
	}
	// Snapshot-cadence sweep at the acceptance point (fsync on, batch=32):
	// how much the periodic dirty-page capture costs on top of the WAL.
	for _, every := range []int{8, 64} {
		b.Run(fmt.Sprintf("fsync=true/batch=32/snap=%d", every), func(b *testing.B) {
			benchKVDurable(b, 32, true, every)
		})
	}
}

func benchHTTPBatched(b *testing.B, batch int) {
	b.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	srv, err := httpd.NewServer(sys, httpd.Config{Mode: httpd.ModeSDRaD, InterArrival: time.Nanosecond})
	if err != nil {
		b.Fatal(err)
	}
	srv.HandleFunc("/", []byte("<html>index</html>"))
	raw := httpd.BuildRequest("GET", "/", nil)
	reqs := make([]httpd.BatchRequest, 0, batch)
	startVT := sys.Clock().Now()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if rem := b.N - i; rem < n {
			n = rem
		}
		reqs = reqs[:0]
		for j := 0; j < n; j++ {
			reqs = append(reqs, httpd.BatchRequest{ClientID: (i + j) % 8, Raw: raw})
		}
		for _, resp := range srv.ServeBatch(reqs) {
			if resp.Err != nil {
				b.Fatal(resp.Err)
			}
		}
	}
	b.StopTimer()
	if vt := sys.Clock().Now() - startVT; vt > 0 {
		b.ReportMetric(float64(b.N)/vt.Seconds(), "vops/s")
	}
}

func BenchmarkE1HTTPSDRaDBatched(b *testing.B) {
	for _, k := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", k), func(b *testing.B) { benchHTTPBatched(b, k) })
	}
}

// BenchmarkAsyncPoolSubmit measures the public AsyncPool submission
// path end to end: queue, coalesced batch entry, future resolution.
func BenchmarkAsyncPoolSubmit(b *testing.B) {
	pool, err := sdrad.NewPool(4)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = pool.Close() }()
	ap, err := sdrad.NewAsyncPool(pool, sdrad.AsyncConfig{MaxBatch: 32, MaxInflight: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = ap.Close() }()
	payload := make([]byte, 128)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			err := ap.Do(context.Background(), func(c *sdrad.Ctx) error {
				p := c.MustAlloc(128)
				c.MustStore(p, payload)
				return nil
			})
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// ---- E1 parallel: supervisor-pool throughput scaling ----
//
// The pooled servers shard requests across N workers, each a private
// simulated machine, so N goroutines execute domains concurrently. Two
// throughputs matter: wall-clock ops/sec (scales with physical cores
// driving the simulator) and vops/s — requests per second of simulated
// machine time, computed against the pool's parallel makespan (the
// slowest shard's virtual clock). vops/s shows the architectural scaling
// even on a single-core host: N workers are N simulated cores.

func benchKVPool(b *testing.B, workers int) {
	b.Helper()
	pool, err := kvstore.NewPool(core.DefaultConfig(),
		kvstore.ServerConfig{Mode: kvstore.ModeSDRaD, InterArrival: time.Nanosecond},
		workers, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	var clientSeq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(clientSeq.Add(1))
		gen, err := workload.NewKV(workload.KVConfig{Seed: uint64(id), Keys: 5000})
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			if resp := pool.Handle(id, gen.Next()); resp.Err != nil {
				b.Error(resp.Err)
				return
			}
		}
	})
	b.StopTimer()
	if vt := pool.VirtualTime(); vt > 0 {
		b.ReportMetric(float64(b.N)/vt.Seconds(), "vops/s")
	}
}

func BenchmarkE1KVSDRaDParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchKVPool(b, w) })
	}
}

func benchHTTPPool(b *testing.B, workers int) {
	b.Helper()
	pool, err := httpd.NewPool(core.DefaultConfig(),
		httpd.Config{Mode: httpd.ModeSDRaD, InterArrival: time.Nanosecond}, workers)
	if err != nil {
		b.Fatal(err)
	}
	pool.HandleFunc("/", []byte("<html>index</html>"))
	raw := httpd.BuildRequest("GET", "/", nil)
	var clientSeq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(clientSeq.Add(1))
		for pb.Next() {
			if resp := pool.Serve(id, raw); resp.Err != nil {
				b.Error(resp.Err)
				return
			}
		}
	})
	b.StopTimer()
	if vt := pool.VirtualTime(); vt > 0 {
		b.ReportMetric(float64(b.N)/vt.Seconds(), "vops/s")
	}
}

func BenchmarkE1HTTPSDRaDParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchHTTPPool(b, w) })
	}
}

// BenchmarkPoolRoundTrip measures the public sdrad.Pool dispatch path:
// least-loaded pick, warm-domain entry, and discard-on-return.
func BenchmarkPoolRoundTrip(b *testing.B) {
	pool, err := sdrad.NewPool(4)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = pool.Close() }()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			err := pool.Run(func(c *sdrad.Ctx) error {
				p := c.MustAlloc(128)
				c.MustStore(p, make([]byte, 128))
				return nil
			})
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkE1TLSNative(b *testing.B) {
	if _, err := exp.TLSOverhead(false, b.N, 1); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkE1TLSSDRaD(b *testing.B) {
	if _, err := exp.TLSOverhead(true, b.N, 1); err != nil {
		b.Fatal(err)
	}
}

// ---- E2: recovery ----

// BenchmarkE2RewindAndDiscard measures real rewind-and-discard
// operations: each iteration triggers a violation in a warm domain.
func BenchmarkE2RewindAndDiscard(b *testing.B) {
	sys := core.NewSystem(core.DefaultConfig())
	if _, err := sys.InitDomain(1, core.DomainConfig{HeapPages: 8}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := sys.Enter(1, func(c *core.DomainCtx) error {
			p := c.MustAlloc(256)
			c.MustStore(p, make([]byte, 256))
			c.MustStore64(0xbad000, 1)
			return nil
		})
		if _, ok := core.IsViolation(err); !ok {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2RestartModel measures the restart cost-model evaluation
// across the state-size sweep.
func BenchmarkE2RestartModel(b *testing.B) {
	sizes := []uint64{100_000_000, 1_000_000_000, 10_000_000_000}
	for i := 0; i < b.N; i++ {
		for _, sz := range sizes {
			_ = procmodel.ProcessRestart{}.RecoveryTime(sz)
			_ = procmodel.ContainerRestart{}.RecoveryTime(sz)
		}
	}
}

// ---- E3: availability arithmetic ----

func BenchmarkE3AvailabilitySweep(b *testing.B) {
	restart := procmodel.ProcessRestart{}.RecoveryTime(10_000_000_000)
	rewind := 3500 * time.Nanosecond
	target := avail.NinesTarget(5)
	for i := 0; i < b.N; i++ {
		for _, f := range []float64{1, 3, 10, 100, 10_000, 10_000_000} {
			_ = avail.Meets(f, restart, target)
			_ = avail.Meets(f, rewind, target)
			_ = avail.Nines(avail.Availability(avail.Downtime(f, rewind)))
		}
		_ = avail.MaxRecoveries(target, rewind)
	}
}

// ---- E4: containment under attack ----

func benchContainment(b *testing.B, mode kvstore.Mode) {
	b.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := kvstore.NewCache(sys, 1, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := kvstore.NewServer(sys, cache, kvstore.ServerConfig{Mode: mode, InterArrival: time.Nanosecond})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewKV(workload.KVConfig{Seed: 1, Keys: 2000})
	if err != nil {
		b.Fatal(err)
	}
	mal := &workload.MaliciousEvery{G: gen, N: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = srv.Handle(i%8, mal.Next())
	}
}

func BenchmarkE4UnderAttackNative(b *testing.B) { benchContainment(b, kvstore.ModeNative) }
func BenchmarkE4UnderAttackSDRaD(b *testing.B)  { benchContainment(b, kvstore.ModeSDRaD) }

// ---- E6: isolation micro-costs ----

// BenchmarkE6DomainRoundTrip measures a no-op domain enter/exit.
func BenchmarkE6DomainRoundTrip(b *testing.B) {
	sys := core.NewSystem(core.DefaultConfig())
	if _, err := sys.InitDomain(1, core.DomainConfig{}); err != nil {
		b.Fatal(err)
	}
	noop := func(*core.DomainCtx) error { return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Enter(1, noop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6MechanismModel evaluates the E6 cost-model table.
func BenchmarkE6MechanismModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = procmodel.IsolationMechanisms(sdrad.DefaultCostModel())
	}
}

// ---- E7: energy assessment ----

func BenchmarkE7EnergyAssessment(b *testing.B) {
	sc := energy.DefaultScenario()
	sts := procmodel.DefaultStrategies()
	for i := 0; i < b.N; i++ {
		_ = energy.AssessAll(sc, sts)
	}
}

// ---- E8: serialization codecs ----

func BenchmarkE8Codec(b *testing.B) {
	for _, size := range []int{16, 4096, 65536} {
		for _, name := range []string{"raw", "binary", "json"} {
			b.Run(fmt.Sprintf("%s/%dB", name, size), func(b *testing.B) {
				codec, err := serde.ByName(name)
				if err != nil {
					b.Fatal(err)
				}
				payload := make([]byte, size)
				workload.NewRNG(1).Bytes(payload)
				args := []any{payload}
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					enc, err := codec.Encode(args)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := codec.Decode(enc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationDiscardZeroing compares rewind with and without the
// page scrub. The dirty= dimension varies how many of the 64 heap pages
// the run writes before violating: with dirty-page-bounded discard the
// host cost of zero=true scales with dirty, not with the mapped heap
// size (virtual cycles charge the full range either way).
func BenchmarkAblationDiscardZeroing(b *testing.B) {
	bench := func(b *testing.B, zero bool, dirtyPages int) {
		cfg := core.DefaultConfig()
		cfg.ZeroOnDiscard = zero
		sys := core.NewSystem(cfg)
		if _, err := sys.InitDomain(1, core.DomainConfig{HeapPages: 64, MaxHeapPages: 64}); err != nil {
			b.Fatal(err)
		}
		// Touch ~one page per chunk: payload 4072 + overhead = 4096+24.
		dirt := make([]byte, 4072)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := sys.Enter(1, func(c *core.DomainCtx) error {
				for j := 0; j < dirtyPages; j++ {
					p := c.MustAlloc(len(dirt))
					c.MustStore(p, dirt)
				}
				c.Violate(nil)
				return nil
			})
			if _, ok := core.IsViolation(err); !ok {
				b.Fatal(err)
			}
		}
	}
	for _, zero := range []bool{true, false} {
		b.Run(fmt.Sprintf("zero=%v", zero), func(b *testing.B) { bench(b, zero, 0) })
	}
	for _, dirty := range []int{1, 8, 32, 56} {
		b.Run(fmt.Sprintf("zero=true/dirty=%d", dirty), func(b *testing.B) { bench(b, true, dirty) })
	}
}

// BenchmarkAblationDetection compares clean exits with and without the
// exit-time heap integrity sweep.
func BenchmarkAblationDetection(b *testing.B) {
	for _, sweep := range []bool{true, false} {
		b.Run(fmt.Sprintf("sweep=%v", sweep), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.IntegrityCheckOnExit = sweep
			sys := core.NewSystem(cfg)
			if _, err := sys.InitDomain(1, core.DomainConfig{}); err != nil {
				b.Fatal(err)
			}
			// A handful of live chunks for the sweep to walk.
			if err := sys.Enter(1, func(c *core.DomainCtx) error {
				for j := 0; j < 16; j++ {
					c.MustAlloc(64)
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.Enter(1, func(*core.DomainCtx) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGranularity compares one domain entry per request vs
// batching many requests per entry (domain-per-connection vs
// domain-per-request trade-off).
func BenchmarkAblationGranularity(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			sys := core.NewSystem(core.DefaultConfig())
			if _, err := sys.InitDomain(1, core.DomainConfig{}); err != nil {
				b.Fatal(err)
			}
			work := func(c *core.DomainCtx) {
				p := c.MustAlloc(128)
				c.MustStore(p, make([]byte, 128))
				c.MustFree(p)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				n := batch
				if rem := b.N - i; rem < n {
					n = rem
				}
				err := sys.Enter(1, func(c *core.DomainCtx) error {
					for j := 0; j < n; j++ {
						work(c)
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNesting measures entry cost vs domain nesting depth.
func BenchmarkAblationNesting(b *testing.B) {
	for _, depth := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			sys := core.NewSystem(core.DefaultConfig())
			for d := 1; d <= depth; d++ {
				if _, err := sys.InitDomain(core.UDI(d), core.DomainConfig{HeapPages: 2, StackPages: 2}); err != nil {
					b.Fatal(err)
				}
			}
			var enter func(c *core.DomainCtx, d int) error
			enter = func(c *core.DomainCtx, d int) error {
				if d > depth {
					return nil
				}
				return c.Enter(core.UDI(d), func(ic *core.DomainCtx) error {
					return enter(ic, d+1)
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := sys.Enter(1, func(c *core.DomainCtx) error {
					return enter(c, 2)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFFICallRoundTrip measures the full SDRaD-FFI pipeline through
// the public API.
func BenchmarkFFICallRoundTrip(b *testing.B) {
	sup := sdrad.New()
	bridge, err := sup.NewBridge(sdrad.CodecBinary)
	if err != nil {
		b.Fatal(err)
	}
	if err := bridge.Register(sdrad.Foreign{
		Name: "echo",
		Fn:   func(_ *sdrad.Ctx, args []any) ([]any, error) { return args, nil },
	}); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bridge.Call("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Elastic controller under burst load ----
//
// BenchmarkElasticBurst alternates concurrent submission bursts with a
// serial trickle against an AsyncPool running the elastic controller.
// Bursts back the queues up past the grow threshold (the controller
// doubles the worker set); the trickle's per-batch evaluations see the
// queues idle and halve it back. The custom metrics pin the controller's
// activity in the JSON report: workers_max is the burst high-water
// count, workers_final the post-trickle count, grown/shrunk the resize
// totals, and sheds/op the overload rejections per request.
func BenchmarkElasticBurst(b *testing.B) {
	pool, err := sdrad.NewPool(2)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = pool.Close() }()
	ap, err := sdrad.NewAsyncPool(pool, sdrad.AsyncConfig{MaxBatch: 8, MaxInflight: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = ap.Close() }()
	if err := ap.EnableElastic(sdrad.ElasticConfig{Min: 2, Max: 8, GrowDepthPerWorker: 2, ShrinkIdleEvals: 4}); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	work := func(c *sdrad.Ctx) error {
		p := c.MustAlloc(64)
		c.MustStore(p, payload)
		return nil
	}
	var sheds atomic.Int64
	b.ResetTimer()
	done := 0
	futs := make([]*sdrad.Future, 0, 192)
	for done < b.N {
		// Burst: fire-and-forget submissions well past the admission
		// bound, then wait. The backed-up queues are the grow signal;
		// overload rejections are the admission layer doing its job
		// under the burst — shed load, not errors.
		burst := b.N - done
		if burst > 192 {
			burst = 192
		}
		futs = futs[:0]
		for i := 0; i < burst; i++ {
			futs = append(futs, ap.Submit(context.Background(), work))
		}
		for _, f := range futs {
			if err := f.Err(); err != nil {
				if _, ok := sdrad.IsOverload(err); ok {
					sheds.Add(1)
					continue
				}
				b.Fatal(err)
			}
		}
		done += burst
		// Trickle: serial requests whose batch completions give the
		// controller its idle evaluations.
		for j := 0; j < 48 && done < b.N; j++ {
			if err := ap.Do(context.Background(), work); err != nil {
				b.Fatal(err)
			}
			done++
		}
	}
	b.StopTimer()
	// Untimed settle: idle evaluations after the last burst, so
	// workers_final reports the shrunk-back steady state. The yield
	// after each call lets the coalesced-kick controller goroutine run
	// between completions; without it a tight serial loop outpaces the
	// evaluations and the shrink lands after the loop gives up.
	for i := 0; i < 500 && ap.ElasticStats().Workers > 2; i++ {
		if err := ap.Do(context.Background(), work); err != nil {
			b.Fatal(err)
		}
		runtime.Gosched()
	}
	st := ap.ElasticStats()
	b.ReportMetric(float64(st.MaxWorkers), "workers_max")
	b.ReportMetric(float64(st.Workers), "workers_final")
	b.ReportMetric(float64(st.Grown), "grown")
	b.ReportMetric(float64(st.Shrunk), "shrunk")
	b.ReportMetric(float64(sheds.Load())/float64(b.N), "sheds/op")
}
