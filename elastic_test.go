package sdrad_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	sdrad "repro"
	"repro/internal/fault"
	"repro/internal/lifecycle"
)

// TestElasticResizeHammer drives batched KV-style writes from many
// goroutines while a resizer cycles the worker count and a drain fires
// mid-run (run under -race). The acked-write invariant is checked per
// call: an acknowledged write must have executed (no acked write lost),
// and a rejected write must not have (no unacked write surviving).
func TestElasticResizeHammer(t *testing.T) {
	pool, err := sdrad.NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pool.Close() })
	ap, err := sdrad.NewAsyncPool(pool, sdrad.AsyncConfig{MaxBatch: 8, MaxInflight: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ap.Close() })

	const producers, per = 8, 120
	const total = producers * per
	applied := make([]atomic.Bool, total) // host-side "row written" flags

	// Resizer: cycle grow/shrink until the producers finish. Once the
	// mid-run drain lands, resizes are refused with a typed lifecycle
	// error — any other failure is a bug.
	stopResize := make(chan struct{})
	var resizeWG sync.WaitGroup
	resizeWG.Add(1)
	go func() {
		defer resizeWG.Done()
		sizes := []int{4, 8, 2, 6, 1, 5, 3}
		for i := 0; ; i++ {
			select {
			case <-stopResize:
				return
			default:
			}
			if rerr := ap.Resize(sizes[i%len(sizes)]); rerr != nil {
				if _, ok := lifecycle.IsLifecycle(rerr); !ok {
					t.Errorf("Resize(%d): %v", sizes[i%len(sizes)], rerr)
				}
			}
			runtime.Gosched()
		}
	}()

	var submitted atomic.Int64
	var drainOnce sync.Once
	drainDone := make(chan struct{})
	var acked, contained, rejected, wrong atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := p*per + i
				malicious := (p+i)%13 == 0
				// Mid-run graceful drain: admission stops, the admitted
				// backlog flushes, later writes are shed with a typed error.
				// The triggering producer waits for the drain to land so
				// its remaining submissions are guaranteed post-drain —
				// otherwise fast producers can finish before admission
				// closes and the shed class never materializes.
				if submitted.Add(1) == total/2 {
					go drainOnce.Do(func() {
						defer close(drainDone)
						if derr := ap.Drain(); derr != nil {
							t.Errorf("Drain: %v", derr)
						}
					})
					<-drainDone
				}
				err := ap.Do(context.Background(), func(c *sdrad.Ctx) error {
					b := c.MustAlloc(32)
					c.MustStore(b, make([]byte, 32))
					if malicious {
						fault.Inject(c, fault.HeapOverflow, 0)
					}
					c.MustFree(b)
					applied[id].Store(true)
					return nil
				})
				switch {
				case err == nil:
					if malicious {
						wrong.Add(1)
					} else {
						acked.Add(1)
						if !applied[id].Load() {
							t.Errorf("write %d acked but never executed", id)
						}
					}
				default:
					if _, ok := sdrad.IsViolation(err); ok {
						if !malicious {
							wrong.Add(1)
						} else {
							contained.Add(1)
						}
						break
					}
					_, overload := sdrad.IsOverload(err)
					_, lcErr := lifecycle.IsLifecycle(err)
					if overload || lcErr || errors.Is(err, sdrad.ErrAsyncClosed) {
						rejected.Add(1)
						if applied[id].Load() {
							t.Errorf("write %d rejected (%v) but executed anyway", id, err)
						}
						break
					}
					wrong.Add(1)
				}
			}
		}(p)
	}
	wg.Wait()
	close(stopResize)
	resizeWG.Wait()
	<-drainDone

	// The drained pool refuses new work without executing it — counted
	// into the rejected class so the mix assertion below cannot flake
	// even if every producer happened to finish before admission closed.
	var probeRan atomic.Bool
	perr := ap.Do(context.Background(), func(c *sdrad.Ctx) error {
		probeRan.Store(true)
		return nil
	})
	if perr == nil || probeRan.Load() {
		t.Errorf("post-drain submission not shed: err=%v ran=%v", perr, probeRan.Load())
	} else {
		_, overload := sdrad.IsOverload(perr)
		_, lcErr := lifecycle.IsLifecycle(perr)
		if !overload && !lcErr && !errors.Is(perr, sdrad.ErrAsyncClosed) {
			t.Errorf("post-drain submission failed with the wrong class: %v", perr)
		} else {
			rejected.Add(1)
		}
	}

	if wrong.Load() != 0 {
		t.Errorf("%d calls resolved with the wrong class", wrong.Load())
	}
	if acked.Load() == 0 || contained.Load() == 0 || rejected.Load() == 0 {
		t.Errorf("degenerate mix: acked=%d contained=%d rejected=%d (want all three non-zero)",
			acked.Load(), contained.Load(), rejected.Load())
	}

	// Aggregate counters stay consistent across the resizes: retired
	// workers' work is still accounted for.
	ds := pool.DomainStats()
	if ds.Rewinds != ds.Violations+ds.Preemptions {
		t.Errorf("Rewinds = %d, want Violations+Preemptions = %d", ds.Rewinds, ds.Violations+ds.Preemptions)
	}
	if ds.Violations < uint64(contained.Load()) {
		t.Errorf("DomainStats.Violations = %d < %d contained calls", ds.Violations, contained.Load())
	}
	if ds.CleanExits == 0 || ds.Entries < ds.CleanExits {
		t.Errorf("inconsistent entries: Entries=%d CleanExits=%d", ds.Entries, ds.CleanExits)
	}
	var detections uint64
	for _, n := range pool.DetectionCounts() {
		detections += n
	}
	if detections < uint64(contained.Load()) {
		t.Errorf("DetectionCounts total = %d < %d contained calls", detections, contained.Load())
	}
}

// TestResizePreservesStats pins the stats-aggregation contract of
// shrink: DomainStats and DetectionCounts are byte-identical across the
// retirement of workers that did the work.
func TestResizePreservesStats(t *testing.T) {
	pool, err := sdrad.NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pool.Close() })

	for w := 0; w < 4; w++ {
		if err := pool.RunOn(w, func(c *sdrad.Ctx) error {
			b := c.MustAlloc(16)
			c.MustFree(b)
			return nil
		}); err != nil {
			t.Fatalf("worker %d benign: %v", w, err)
		}
		verr := pool.RunOn(w, func(c *sdrad.Ctx) error {
			fault.Inject(c, fault.HeapOverflow, 0)
			return nil
		})
		if _, ok := sdrad.IsViolation(verr); !ok {
			t.Fatalf("worker %d: got %v, want ViolationError", w, verr)
		}
	}

	before := pool.DomainStats()
	beforeDet := pool.DetectionCounts()
	if err := pool.Resize(2); err != nil {
		t.Fatalf("Resize(2): %v", err)
	}
	if got := pool.Workers(); got != 2 {
		t.Fatalf("Workers after shrink = %d, want 2", got)
	}
	if after := pool.DomainStats(); after != before {
		t.Errorf("DomainStats changed across shrink:\n before %+v\n after  %+v", before, after)
	}
	if afterDet := pool.DetectionCounts(); !reflect.DeepEqual(beforeDet, afterDet) {
		t.Errorf("DetectionCounts changed across shrink:\n before %v\n after  %v", beforeDet, afterDet)
	}

	// The shrunken pool still serves, and new work keeps counting.
	if err := pool.Run(func(c *sdrad.Ctx) error { return nil }); err != nil {
		t.Fatalf("Run after shrink: %v", err)
	}
	if got := pool.DomainStats(); got.Entries != before.Entries+1 {
		t.Errorf("Entries after shrink+1 run = %d, want %d", got.Entries, before.Entries+1)
	}
}

// TestElasticControllerGrowsAndShrinks drives the event-driven
// controller through one full cycle: queue pressure (overload kicks)
// doubles the worker set, then a sustained idle trickle halves it back
// to Min.
func TestElasticControllerGrowsAndShrinks(t *testing.T) {
	pool, err := sdrad.NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pool.Close() })
	ap, err := sdrad.NewAsyncPool(pool, sdrad.AsyncConfig{MaxBatch: 4, MaxInflight: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ap.Close() })
	if err := ap.EnableElastic(sdrad.ElasticConfig{Min: 2, Max: 4, GrowDepthPerWorker: 2, ShrinkIdleEvals: 2}); err != nil {
		t.Fatal(err)
	}

	// Park one blocker on each initial worker so queued depth builds
	// behind them; overload rejections kick the controller, which sees
	// the depth and grows. The hot-added workers drain the backlog.
	gate := make(chan struct{})
	blockers := make([]*sdrad.Future, 2)
	for w := 0; w < 2; w++ {
		blockers[w] = ap.Submit(context.Background(), func(c *sdrad.Ctx) error {
			<-gate
			return nil
		}, sdrad.WithWorker(w))
	}
	grown := false
	for i := 0; i < 5000 && !grown; i++ {
		_ = ap.Submit(context.Background(), func(c *sdrad.Ctx) error { return nil })
		grown = ap.ElasticStats().MaxWorkers > 2
		runtime.Gosched()
	}
	close(gate)
	for w, f := range blockers {
		if err := f.Err(); err != nil {
			t.Fatalf("blocker %d: %v", w, err)
		}
	}
	ap.Flush()
	if st := ap.ElasticStats(); st.Grown == 0 || st.MaxWorkers <= 2 {
		t.Fatalf("controller never grew under pressure: %+v", st)
	}

	// Idle trickle: each completed batch kicks an evaluation that sees an
	// empty queue; ShrinkIdleEvals of those halve the set back to Min.
	shrunk := false
	for i := 0; i < 5000 && !shrunk; i++ {
		if err := ap.Do(context.Background(), func(c *sdrad.Ctx) error { return nil }); err != nil {
			t.Fatalf("trickle %d: %v", i, err)
		}
		st := ap.ElasticStats()
		shrunk = st.Shrunk > 0 && st.Workers == 2
	}
	if !shrunk {
		t.Fatalf("controller never shrank back to Min: %+v", ap.ElasticStats())
	}
}
