package sdrad

import (
	"context"
	"sync/atomic"

	"repro/internal/dispatch"
	"repro/internal/metrics"
	"repro/internal/submit"
)

// This file implements AsyncPool, the asynchronous batched execution
// layer on top of Pool: an io_uring-style submission interface where
// callers enqueue calls into bounded per-worker queues and worker loops
// drain up to MaxBatch queued calls per domain Enter — one Enter/Exit,
// one integrity sweep, one discard decision per batch instead of per
// call (batch.go has the engine and the replay rule that keeps results
// serial-equivalent). Backpressure is explicit: a full queue rejects
// with *OverloadError instead of queueing unboundedly. See DESIGN.md §9.

// Future is the pending result of a Submit. Wait for it with Wait (or
// select on Done and read Err).
type Future = submit.Future

// OverloadError reports that a submission was rejected by admission
// control: the target worker's queue was at capacity. Servers translate
// it into a load-shedding response (503 / SERVER_ERROR).
type OverloadError = submit.OverloadError

// IsOverload reports whether err is (or wraps) an *OverloadError.
func IsOverload(err error) (*OverloadError, bool) { return submit.IsOverload(err) }

// ErrAsyncClosed is returned by Submit/Do after AsyncPool.Close, and
// resolves any call still queued at close time.
var ErrAsyncClosed = submit.ErrClosed

// AsyncConfig configures an AsyncPool.
type AsyncConfig struct {
	// MaxBatch bounds how many queued calls one domain Enter executes
	// (default 32).
	MaxBatch int
	// MaxInflight bounds admitted-but-unfinished calls across the pool —
	// the -max-inflight flag of the demo servers. It divides evenly into
	// per-worker queue capacities (at least 1 each; default 1024).
	MaxInflight int
}

func (c *AsyncConfig) fill(workers int) {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.MaxInflight < workers {
		c.MaxInflight = workers
	}
}

// AsyncPool is the asynchronous batched front of a Pool. Submissions
// enqueue into a bounded per-worker queue; one consumer goroutine per
// worker drains batches and executes them with the amortized batch
// entry. AsyncPool implements Runner (Do is Submit+Wait) and is safe
// for concurrent use. Create with NewAsyncPool; Close stops the async
// layer but leaves the wrapped Pool open (the caller owns it).
type AsyncPool struct {
	pool *Pool
	cfg  AsyncConfig
	q    *submit.Queues
	rr   atomic.Uint64
	lat  metrics.BatchLatency

	batches  atomic.Uint64
	commits  atomic.Uint64
	replayed atomic.Uint64
}

// NewAsyncPool wraps pool with the asynchronous submission layer.
func NewAsyncPool(pool *Pool, cfg AsyncConfig) (*AsyncPool, error) {
	cfg.fill(pool.Workers())
	a := &AsyncPool{pool: pool, cfg: cfg}
	depth := cfg.MaxInflight / pool.Workers()
	if depth < 1 {
		depth = 1
	}
	q, err := submit.New(submit.Config{
		Workers:  pool.Workers(),
		Depth:    depth,
		MaxBatch: cfg.MaxBatch,
		Exec:     a.execBatch,
	})
	if err != nil {
		return nil, err
	}
	a.q = q
	return a, nil
}

// Workers returns the number of parallel workers (the wrapped Pool's).
func (a *AsyncPool) Workers() int { return a.pool.Workers() }

// Pool returns the wrapped Pool, for stats aggregation.
func (a *AsyncPool) Pool() *Pool { return a.pool }

// execBatch is the queue drain callback: it turns one drained batch
// into one batched domain execution on the matching pool worker.
func (a *AsyncPool) execBatch(worker int, batch []*submit.Task) {
	calls := make([]*batchCall, len(batch))
	for i, t := range batch {
		calls[i] = t.Payload.(*batchCall)
	}
	a.pool.workers[worker].inflight.Add(1)
	rep, cycles := a.pool.execBatchOn(worker, calls)
	a.batches.Add(1)
	if rep.Committed {
		a.commits.Add(1)
	}
	a.replayed.Add(uint64(rep.Replayed))
	a.lat.Observe(len(calls), cycles)
	for i, t := range batch {
		t.Resolve(calls[i].err)
	}
}

// Submit enqueues fn for batched execution and returns its Future
// immediately. The returned future resolves to what Do(ctx, fn,
// opts...) would return; admission-control rejections (*OverloadError)
// and submissions after Close (ErrAsyncClosed) come back as an
// already-resolved future. WithWorker pins the call to one worker's
// queue; otherwise the least-loaded queue wins. Because batched calls
// may be re-executed by the replay rule, fn is under the same
// at-least-once contract as WithRetries.
func (a *AsyncPool) Submit(ctx context.Context, fn func(*Ctx) error, opts ...RunOption) *Future {
	set := applyRunOptions(opts)
	call := &batchCall{ctx: ctx, fn: fn, set: set}
	if set.hasWorker {
		w := set.worker % a.Workers()
		if w < 0 {
			w += a.Workers()
		}
		fut, err := a.q.Submit(w, ctx, call)
		if err != nil {
			return submit.Resolved(err)
		}
		return fut
	}
	w := dispatch.LeastLoaded(a.Workers(), int(a.rr.Add(1)-1), a.q.Load)
	fut, err := a.q.Submit(w, ctx, call)
	if _, over := submit.IsOverload(err); over {
		// The load snapshot can go stale under a burst (queue depths are
		// reserved inside each queue's lock, not at pick time), so a full
		// first pick does not mean the pool is full: fail over across the
		// remaining queues and report overload only when every queue
		// rejected — MaxInflight is a pool-wide admission bound.
		for i := 1; i < a.Workers(); i++ {
			fut, err = a.q.Submit((w+i)%a.Workers(), ctx, call)
			if _, over = submit.IsOverload(err); !over {
				break
			}
		}
	}
	if err != nil {
		return submit.Resolved(err)
	}
	return fut
}

// Do implements Runner: Submit plus Wait. A full queue surfaces as a
// typed *OverloadError — the backpressure signal — rather than
// blocking; callers that prefer blocking admission can Submit from
// fewer goroutines or retry on IsOverload.
func (a *AsyncPool) Do(ctx context.Context, fn func(*Ctx) error, opts ...RunOption) error {
	return a.Submit(ctx, fn, opts...).Wait(ctx)
}

// DoBatch submits fns as consecutive entries on one worker's queue
// (blocking for space rather than rejecting — the caller has already
// sized its batch) and waits for all of them. Results are positional,
// like Pool.DoBatch.
func (a *AsyncPool) DoBatch(ctx context.Context, fns []func(*Ctx) error, opts ...RunOption) []error {
	set := applyRunOptions(opts)
	errs := make([]error, len(fns))
	if len(fns) == 0 {
		return errs
	}
	var w int
	if set.hasWorker {
		w = set.worker % a.Workers()
		if w < 0 {
			w += a.Workers()
		}
	} else {
		w = dispatch.LeastLoaded(a.Workers(), int(a.rr.Add(1)-1), a.q.Load)
	}
	futs := make([]*Future, len(fns))
	for i, fn := range fns {
		call := &batchCall{ctx: ctx, fn: fn, set: set}
		fut, err := a.q.SubmitWait(w, ctx, call)
		if err != nil {
			errs[i] = err
			continue
		}
		futs[i] = fut
	}
	for i, fut := range futs {
		if fut != nil {
			errs[i] = fut.Err()
		}
	}
	return errs
}

// Flush blocks until every call admitted before it has resolved.
func (a *AsyncPool) Flush() { a.q.Flush() }

// Close stops the async layer: new submissions fail with
// ErrAsyncClosed, the queued backlog is failed, in-flight batches
// finish. The wrapped Pool stays open. Idempotent; call Flush first for
// a graceful drain.
func (a *AsyncPool) Close() error {
	a.q.Close()
	return nil
}

// AsyncStats reports the batching layer's aggregate counters.
type AsyncStats struct {
	// Batches counts executed batches; Committed the ones whose
	// optimistic pass stood; Replayed the calls that fell back to
	// serial re-execution.
	Batches, Committed uint64
	Replayed           uint64
	// Submitted and Rejected count admitted and overload-rejected
	// submissions across workers.
	Submitted, Rejected uint64
	// MaxBatch is the largest batch any worker executed.
	MaxBatch int
}

// Stats returns a snapshot of the async layer's counters.
func (a *AsyncPool) Stats() AsyncStats {
	st := AsyncStats{
		Batches:   a.batches.Load(),
		Committed: a.commits.Load(),
		Replayed:  a.replayed.Load(),
	}
	for w := 0; w < a.q.Workers(); w++ {
		qs := a.q.Stats(w)
		st.Submitted += qs.Submitted
		st.Rejected += qs.Rejected
		if qs.MaxBatch > st.MaxBatch {
			st.MaxBatch = qs.MaxBatch
		}
	}
	return st
}

// BatchLatency returns per-batch-size virtual-cycle latency summaries
// (p50/p95/p99 per call), ascending by batch size.
func (a *AsyncPool) BatchLatency() []metrics.BatchSummary { return a.lat.Summaries() }

// Interface compliance check.
var _ Runner = (*AsyncPool)(nil)
