package sdrad

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/dispatch"
	"repro/internal/lifecycle"
	"repro/internal/metrics"
	"repro/internal/submit"
)

// This file implements AsyncPool, the asynchronous batched execution
// layer on top of Pool: an io_uring-style submission interface where
// callers enqueue calls into bounded per-worker queues and worker loops
// drain up to MaxBatch queued calls per domain Enter — one Enter/Exit,
// one integrity sweep, one discard decision per batch instead of per
// call (batch.go has the engine and the replay rule that keeps results
// serial-equivalent). Backpressure is explicit: a full queue rejects
// with *OverloadError instead of queueing unboundedly. See DESIGN.md §9.
//
// The layer is elastic (DESIGN.md §13): Resize changes the worker count
// at runtime, and EnableElastic starts the optional controller
// (elastic.go) that resizes automatically from queue depth and batch-
// latency pressure.

// Future is the pending result of a Submit. Wait for it with Wait (or
// select on Done and read Err).
type Future = submit.Future

// OverloadError reports that a submission was rejected by admission
// control: the target worker's queue was at capacity. Servers translate
// it into a load-shedding response (503 / SERVER_ERROR).
type OverloadError = submit.OverloadError

// IsOverload reports whether err is (or wraps) an *OverloadError.
func IsOverload(err error) (*OverloadError, bool) { return submit.IsOverload(err) }

// ErrAsyncClosed is returned by Submit/Do after AsyncPool.Close, and
// resolves any call still queued at close time.
var ErrAsyncClosed = submit.ErrClosed

// AsyncConfig configures an AsyncPool.
type AsyncConfig struct {
	// MaxBatch bounds how many queued calls one domain Enter executes
	// (default 32).
	MaxBatch int
	// MaxInflight bounds admitted-but-unfinished calls across the pool —
	// the -max-inflight flag of the demo servers. It divides evenly into
	// per-worker queue capacities (at least 1 each; default 1024).
	MaxInflight int
}

func (c *AsyncConfig) fill(workers int) {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.MaxInflight < workers {
		c.MaxInflight = workers
	}
}

// AsyncPool is the asynchronous batched front of a Pool. Submissions
// enqueue into a bounded per-worker queue; one consumer goroutine per
// worker drains batches and executes them with the amortized batch
// entry. AsyncPool implements Runner (Do is Submit+Wait) and is safe
// for concurrent use. Create with NewAsyncPool (or NewDeferredAsyncPool
// for the lifecycle-managed form); Close stops the async layer but
// leaves the wrapped Pool open (the caller owns it).
type AsyncPool struct {
	pool *Pool
	cfg  AsyncConfig
	lc   *lifecycle.Machine
	// q is set by Init (atomically, so the hot submission paths read it
	// lock-free even while a deferred pool is still initializing).
	q  atomic.Pointer[submit.Queues]
	rr atomic.Uint64

	lat metrics.BatchLatency

	// resizeMu serializes Resize calls so the two-step grow/shrink
	// ordering against the wrapped Pool is never interleaved.
	resizeMu sync.Mutex

	// ctrl is the optional elastic controller (under ctrlMu).
	ctrlMu sync.Mutex
	ctrl   *elasticController

	batches  atomic.Uint64
	commits  atomic.Uint64
	replayed atomic.Uint64
}

// NewAsyncPool wraps pool with the asynchronous submission layer. The
// returned AsyncPool is already serving (Init and Start have run);
// pool must itself be serving.
func NewAsyncPool(pool *Pool, cfg AsyncConfig) (*AsyncPool, error) {
	a := NewDeferredAsyncPool(pool, cfg)
	if err := a.Init(); err != nil {
		return nil, err
	}
	if err := a.Start(); err != nil {
		return nil, err
	}
	return a, nil
}

// NewDeferredAsyncPool constructs the async layer without allocating
// its queues: the lifecycle-managed form (DESIGN.md §13). Call Init to
// build the submission queues and Start to begin serving.
func NewDeferredAsyncPool(pool *Pool, cfg AsyncConfig) *AsyncPool {
	return &AsyncPool{pool: pool, cfg: cfg, lc: lifecycle.NewMachine("sdrad.AsyncPool")}
}

// Init allocates the submission queues (lifecycle: legal once, from
// StateInitializing). NewAsyncPool calls it for you.
func (a *AsyncPool) Init() error {
	return a.lc.Init(func() error {
		workers := a.pool.Workers()
		if workers == 0 {
			// Deferred wrapped pool: size the queue set from its
			// configured worker count instead.
			workers = a.pool.n
		}
		a.cfg.fill(workers)
		depth := a.cfg.MaxInflight / workers
		if depth < 1 {
			depth = 1
		}
		q, err := submit.New(submit.Config{
			Workers:  workers,
			Depth:    depth,
			MaxBatch: a.cfg.MaxBatch,
			Exec:     a.execBatch,
		})
		if err != nil {
			return err
		}
		a.q.Store(q)
		return nil
	})
}

// Start moves the async layer to StateHealthy (lifecycle: legal once,
// after Init).
func (a *AsyncPool) Start() error { return a.lc.Start(nil) }

// State returns the async layer's lifecycle state.
func (a *AsyncPool) State() lifecycle.State { return a.lc.State() }

// queues returns the submission queues (nil before Init).
func (a *AsyncPool) queues() *submit.Queues { return a.q.Load() }

// notServing is the resolved-future rejection for a submission to an
// async layer whose queues do not exist yet.
func (a *AsyncPool) notServing(op string) error {
	return &lifecycle.LifecycleError{Component: "sdrad.AsyncPool", Op: op, From: a.lc.State(), Reason: "before Init"}
}

// Workers returns the number of parallel workers (the wrapped Pool's).
func (a *AsyncPool) Workers() int { return a.pool.Workers() }

// Pool returns the wrapped Pool, for stats aggregation.
func (a *AsyncPool) Pool() *Pool { return a.pool }

// execBatch is the queue drain callback: it turns one drained batch
// into one batched domain execution on the matching pool worker.
func (a *AsyncPool) execBatch(worker int, batch []*submit.Task) {
	calls := make([]*batchCall, len(batch))
	for i, t := range batch {
		calls[i] = t.Payload.(*batchCall)
	}
	rep, cycles := a.pool.dispatchBatch(worker, true, calls)
	a.batches.Add(1)
	if rep.Committed {
		a.commits.Add(1)
	}
	a.replayed.Add(uint64(rep.Replayed))
	a.lat.Observe(len(calls), cycles)
	for i, t := range batch {
		t.Resolve(calls[i].err)
	}
	a.kickController()
}

// Submit enqueues fn for batched execution and returns its Future
// immediately. The returned future resolves to what Do(ctx, fn,
// opts...) would return; admission-control rejections (*OverloadError)
// and submissions after Close (ErrAsyncClosed) come back as an
// already-resolved future. WithWorker pins the call to one worker's
// queue; otherwise the least-loaded queue wins. Because batched calls
// may be re-executed by the replay rule, fn is under the same
// at-least-once contract as WithRetries.
func (a *AsyncPool) Submit(ctx context.Context, fn func(*Ctx) error, opts ...RunOption) *Future {
	set := applyRunOptions(opts)
	q := a.queues()
	if q == nil {
		return submit.Resolved(a.notServing("Submit"))
	}
	call := &batchCall{ctx: ctx, fn: fn, set: set}
	// Dispatch over the queue count, not the pool size: during a resize
	// the two differ for a moment (grow brings pool workers up before
	// their queues exist; shrink drains queues before pool workers go),
	// and the queue set is the one being indexed here.
	workers := q.Workers()
	if set.hasWorker {
		w := set.worker % workers
		if w < 0 {
			w += workers
		}
		fut, err := q.Submit(w, ctx, call)
		if err != nil {
			return submit.Resolved(err)
		}
		return fut
	}
	w := dispatch.LeastLoaded(workers, int(a.rr.Add(1)-1), q.Load)
	fut, err := q.Submit(w, ctx, call)
	if _, over := submit.IsOverload(err); over {
		// The load snapshot can go stale under a burst (queue depths are
		// reserved inside each queue's lock, not at pick time), so a full
		// first pick does not mean the pool is full: fail over across the
		// remaining queues and report overload only when every queue
		// rejected — MaxInflight is a pool-wide admission bound.
		for i := 1; i < workers; i++ {
			fut, err = q.Submit((w+i)%workers, ctx, call)
			if _, over = submit.IsOverload(err); !over {
				break
			}
		}
	}
	if err != nil {
		if _, over := submit.IsOverload(err); over {
			a.kickController()
		}
		return submit.Resolved(err)
	}
	return fut
}

// Do implements Runner: Submit plus Wait. A full queue surfaces as a
// typed *OverloadError — the backpressure signal — rather than
// blocking; callers that prefer blocking admission can Submit from
// fewer goroutines or retry on IsOverload.
func (a *AsyncPool) Do(ctx context.Context, fn func(*Ctx) error, opts ...RunOption) error {
	return a.Submit(ctx, fn, opts...).Wait(ctx)
}

// DoBatch submits fns as consecutive entries on one worker's queue
// (blocking for space rather than rejecting — the caller has already
// sized its batch) and waits for all of them. Results are positional,
// like Pool.DoBatch.
func (a *AsyncPool) DoBatch(ctx context.Context, fns []func(*Ctx) error, opts ...RunOption) []error {
	set := applyRunOptions(opts)
	errs := make([]error, len(fns))
	if len(fns) == 0 {
		return errs
	}
	q := a.queues()
	if q == nil {
		err := a.notServing("DoBatch")
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	workers := q.Workers()
	var w int
	if set.hasWorker {
		w = set.worker % workers
		if w < 0 {
			w += workers
		}
	} else {
		w = dispatch.LeastLoaded(workers, int(a.rr.Add(1)-1), q.Load)
	}
	futs := make([]*Future, len(fns))
	for i, fn := range fns {
		call := &batchCall{ctx: ctx, fn: fn, set: set}
		fut, err := q.SubmitWait(w, ctx, call)
		if err != nil {
			errs[i] = err
			continue
		}
		futs[i] = fut
	}
	for i, fut := range futs {
		if fut != nil {
			errs[i] = fut.Err()
		}
	}
	return errs
}

// Resize grows or shrinks the async layer to n workers (lifecycle:
// legal only while serving). The two layers move in the order that
// never strands a submission: growing resizes the wrapped Pool up
// first and then adds queues (a queue always has a live worker);
// shrinking drains the removed queues first — their backlogs execute
// to completion on the still-live workers, preserving every
// acknowledged call — and only then retires the pool workers.
func (a *AsyncPool) Resize(n int) error {
	if err := a.lc.Resizable(); err != nil {
		return err
	}
	a.resizeMu.Lock()
	defer a.resizeMu.Unlock()
	q := a.queues()
	cur := q.Workers()
	if n == cur {
		return nil
	}
	if n > cur {
		if err := a.pool.Resize(n); err != nil {
			return err
		}
		return q.Resize(n)
	}
	if err := q.Resize(n); err != nil {
		return err
	}
	return a.pool.Resize(n)
}

// Flush blocks until every call admitted before it has resolved.
func (a *AsyncPool) Flush() {
	if q := a.queues(); q != nil {
		q.Flush()
	}
}

// Drain stops admission gracefully: the elastic controller stops, every
// admitted call resolves (Flush), then the queues close so later
// submissions fail with ErrAsyncClosed. Idempotent; legal after Start.
// The wrapped Pool stays open; when the pool is to be drained too,
// drain this layer first — Pool.Drain sheds batches that arrive after
// it starts.
//
// stopController runs inside the machine transition (the machine mutex
// is held), which is deadlock-free only because lifecycle.Resizable is
// lock-free: the machine publishes StateDraining before this callback
// runs, so a controller loop concurrently inside Resize observes the
// typed refusal and returns to its select — where stopController's stop
// signal reaches it — instead of blocking on the mutex held here.
func (a *AsyncPool) Drain() error {
	return a.lc.Drain(func() error {
		a.stopController()
		if q := a.queues(); q != nil {
			q.Flush()
			q.Close()
		}
		return nil
	})
}

// Stop tears down the async layer (lifecycle: legal once; Close is the
// idempotent form). Queued calls that were not flushed first fail with
// ErrAsyncClosed; in-flight batches finish. The wrapped Pool stays
// open.
func (a *AsyncPool) Stop(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return a.lc.Stop(a.teardown)
}

// Close stops the async layer: new submissions fail with
// ErrAsyncClosed, the queued backlog is failed, in-flight batches
// finish. The wrapped Pool stays open. Idempotent; call Flush (or
// Drain) first for a graceful stop.
func (a *AsyncPool) Close() error { return a.lc.Close(a.teardown) }

// teardown runs under the machine mutex (Stop/Close transition); see
// the Drain comment for why stopController cannot deadlock there.
func (a *AsyncPool) teardown() error {
	a.stopController()
	if q := a.queues(); q != nil {
		q.Close()
	}
	return nil
}

// AsyncStats reports the batching layer's aggregate counters.
type AsyncStats struct {
	// Batches counts executed batches; Committed the ones whose
	// optimistic pass stood; Replayed the calls that fell back to
	// serial re-execution.
	Batches, Committed uint64
	Replayed           uint64
	// Submitted and Rejected count admitted and overload-rejected
	// submissions across workers.
	Submitted, Rejected uint64
	// MaxBatch is the largest batch any worker executed.
	MaxBatch int
}

// Stats returns a snapshot of the async layer's counters.
func (a *AsyncPool) Stats() AsyncStats {
	st := AsyncStats{
		Batches:   a.batches.Load(),
		Committed: a.commits.Load(),
		Replayed:  a.replayed.Load(),
	}
	q := a.queues()
	if q == nil {
		return st
	}
	for w := 0; w < q.Workers(); w++ {
		qs := q.Stats(w)
		st.Submitted += qs.Submitted
		st.Rejected += qs.Rejected
		if qs.MaxBatch > st.MaxBatch {
			st.MaxBatch = qs.MaxBatch
		}
	}
	return st
}

// BatchLatency returns per-batch-size virtual-cycle latency summaries
// (p50/p95/p99 per call), ascending by batch size.
func (a *AsyncPool) BatchLatency() []metrics.BatchSummary { return a.lat.Summaries() }

// Interface compliance checks.
var (
	_ Runner              = (*AsyncPool)(nil)
	_ lifecycle.Component = (*AsyncPool)(nil)
	_ lifecycle.Component = (*Pool)(nil)
	_ lifecycle.Resizer   = (*AsyncPool)(nil)
	_ lifecycle.Resizer   = (*Pool)(nil)
)
