package sdrad

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestNewPoolWithDomainPartialFailure is the regression test for the
// worker leak in NewPoolWithDomain: when worker i fails to initialize,
// the domains of workers 0..i-1 must be closed before the error returns.
func TestNewPoolWithDomainPartialFailure(t *testing.T) {
	var created []*poolWorker
	testHookWorkerCreated = func(i int, w *poolWorker) { created = append(created, w) }
	defer func() { testHookWorkerCreated = nil }()

	// The domain options run once per worker, in order; the second
	// worker gets an unsatisfiable heap (initial > max), so its
	// NewDomain fails after worker 0 is fully up.
	calls := 0
	sabotage := DomainOption(func(c *core.DomainConfig) {
		calls++
		if calls == 2 {
			c.HeapPages = 10
			c.MaxHeapPages = 5
		}
	})

	p, err := NewPoolWithDomain(3, []DomainOption{sabotage})
	if err == nil {
		_ = p.Close()
		t.Fatal("NewPoolWithDomain succeeded, want worker 1 to fail")
	}
	if !strings.Contains(err.Error(), "worker 1") {
		t.Errorf("error %q does not identify worker 1", err)
	}
	if len(created) != 1 {
		t.Fatalf("%d workers created before the failure, want 1", len(created))
	}

	// The fix: worker 0's warm domain was closed, so its supervisor has
	// no live domains and no mapped pages left.
	ms := created[0].sup.MemoryStats()
	if ms.Domains != 0 {
		t.Errorf("worker 0 leaked %d live domain(s) after construction failure", ms.Domains)
	}
	if ms.MappedPages != 0 {
		t.Errorf("worker 0 leaked %d mapped page(s) after construction failure", ms.MappedPages)
	}
}
